package nd

import (
	"repro/internal/engine"
)

// The shard/merge execution layer: split any scenario list, sweep, or
// adaptive round across processes by trial-index range, serialize each
// process's accumulator state as a versioned ndshard/1 snapshot, and merge
// the snapshots into results byte-identical (after StripRuntime) to an
// unsharded run. The engine's determinism contract — every trial runs on
// an RNG stream derived from (spec hash, trial index), and both
// aggregation paths are closed under merging disjoint trial ranges — makes
// the merge exact, not approximate.
type (
	// ShardSpec selects trial-range shard k of n (1-based): the contiguous
	// range [⌊(k−1)·T/n⌋, ⌊k·T/n⌋) of every scenario's trials.
	ShardSpec = engine.ShardSpec
	// Snapshot is one ndshard/1 document: a shard's serialized accumulator
	// state for every point it ran, plus — for adaptive searches — the
	// search spec and the pooled evaluations of completed rounds.
	Snapshot = engine.Snapshot
	// PointSnapshot is one scenario's accumulator state over one trial
	// range inside a Snapshot.
	PointSnapshot = engine.PointSnapshot
)

// SnapshotCodec is the ndshard serialization version this build reads and
// writes; decoding rejects every other value.
const SnapshotCodec = engine.SnapshotCodec

// ParseShard parses the CLI shard form "k/n".
func ParseShard(s string) (ShardSpec, error) { return engine.ParseShard(s) }

// RunScenariosShard runs trial-range shard k/n of a scenario list and
// returns the snapshot to feed MergeSnapshots. The label names the run and
// becomes the merged SuiteResult's suite name.
func RunScenariosShard(label string, scenarios []Scenario, shard ShardSpec, opt EngineOptions) (Snapshot, error) {
	return engine.RunScenariosShard(label, scenarios, shard, opt)
}

// RunSweepShard expands a sweep and runs trial-range shard k/n of every
// grid point, returning the snapshot to feed MergeSnapshots.
func RunSweepShard(sp SweepSpec, shard ShardSpec, opt EngineOptions) (Snapshot, error) {
	return engine.RunSweepShard(sp, shard, opt)
}

// MergeSnapshots merges a complete shard set (shards 1..n of one suite or
// sweep run) into the final SuiteResult, byte-identical — after
// StripRuntime — to the unsharded run's document.
func MergeSnapshots(snaps []Snapshot) (SuiteResult, error) {
	return engine.MergeSnapshots(snaps)
}

// RunAdaptiveShard runs trial-range shard k/n of one adaptive-search
// round: it replays the deterministic search against the continuation
// snapshot's pooled evaluations (prior; nil for the first round) and runs
// this shard's slice of the first unanswered round. Exactly one return is
// set — a snapshot for MergeAdaptiveSnapshots, or the final result when
// the pool already completes the search.
func RunAdaptiveShard(ap AdaptiveSpec, shard ShardSpec, prior *Snapshot, opt EngineOptions) (*Snapshot, *AdaptiveResult, error) {
	return engine.RunAdaptiveShard(ap, shard, prior, opt)
}

// MergeAdaptiveSnapshots merges one adaptive shard round and replays the
// search: it returns the final AdaptiveResult when the search converged,
// or the continuation snapshot to pass (as prior) into the next round's
// RunAdaptiveShard calls.
func MergeAdaptiveSnapshots(snaps []Snapshot) (*AdaptiveResult, *Snapshot, error) {
	return engine.MergeAdaptiveSnapshots(snaps)
}

// RunJournaled runs the scenarios like RunScenarios while journaling every
// completed point's accumulator snapshot into dir; re-running the same job
// against the same directory restores journaled points instead of
// re-executing them, so interrupted sweeps resume where they died and
// produce identical final aggregates.
func RunJournaled(label string, scenarios []Scenario, opt EngineOptions, dir string) ([]ScenarioResult, error) {
	return engine.RunJournaled(label, scenarios, opt, dir)
}

// ReadSnapshotFile loads and validates one ndshard/1 snapshot file.
func ReadSnapshotFile(path string) (Snapshot, error) { return engine.ReadSnapshotFile(path) }

// WriteSnapshotFile atomically writes a snapshot to path (temp file +
// rename, so a crash never leaves a torn snapshot).
func WriteSnapshotFile(path string, s Snapshot) error { return engine.WriteSnapshotFile(path, s) }
