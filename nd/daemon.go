package nd

import (
	"context"

	"repro/internal/server"
)

// The service layer: ndd, the engine as a long-running HTTP daemon. These
// aliases and helpers are the library-side client — submit jobs, wait for
// them, fetch the finished documents — against a daemon started with
// `ndd -addr ...` (or an in-process internal/server instance in tests).
type (
	// Daemon is an HTTP client bound to one running ndd instance.
	Daemon = server.Client
	// DaemonConfig tunes an embedded daemon (workers, queue bound, result
	// cache size, journal directory).
	DaemonConfig = server.Config
	// JobRequest is one job submission: kind (scenario, suite, sweep,
	// adaptive), a registry name or inline spec, and execution options.
	JobRequest = server.JobRequest
	// JobStatus is a job's status document: state, priority, dedupe/cache
	// flags, and (terminal) the run's metrics.
	JobStatus = server.JobStatus
)

// Dial returns a client for the daemon at base, e.g.
// "http://127.0.0.1:8080". No connection is made until the first call.
func Dial(base string) *Daemon { return server.Dial(base) }

// SubmitJob submits a job and returns its status: freshly queued, deduped
// onto an identical live job, or answered from the result cache.
func SubmitJob(ctx context.Context, d *Daemon, req JobRequest) (JobStatus, error) {
	return d.Submit(ctx, req)
}

// WaitJob blocks until the job reaches a terminal state (done, failed,
// canceled) or ctx expires.
func WaitJob(ctx context.Context, d *Daemon, id string) (JobStatus, error) {
	return d.Wait(ctx, id)
}

// JobResult fetches a finished job's document — byte-identical (after
// StripRuntime) to what the equivalent ndscen invocation writes.
func JobResult(ctx context.Context, d *Daemon, id string) ([]byte, error) {
	return d.Result(ctx, id)
}
