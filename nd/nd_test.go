// Integration tests: exercise the public API end to end, the way the
// examples and downstream users do.
package nd_test

import (
	"math"
	"testing"

	"repro/nd"
)

func TestQuickstartFlow(t *testing.T) {
	// The README quickstart: bound → construction → exact analysis.
	p := nd.Params{Omega: 36, Alpha: 1}
	eta := 0.02
	bound := p.Symmetric(eta)
	if bound <= 0 || math.IsNaN(bound) {
		t.Fatalf("bound = %v", bound)
	}
	pair, err := nd.OptimalSymmetric(p.Omega, p.Alpha, eta)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := nd.Analyze(pair.E.B, pair.F.C, nd.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ana.Deterministic {
		t.Fatal("optimal pair not deterministic")
	}
	ratio := float64(ana.WorstLatency) / p.Symmetric(pair.E.Eta(p.Alpha))
	if ratio < 0.999 || ratio > 1.1 {
		t.Errorf("optimality ratio %v", ratio)
	}
}

func TestPublicBoundsSurface(t *testing.T) {
	p := nd.Params{Omega: 36, Alpha: 1}
	checks := []struct {
		name string
		v    float64
	}{
		{"Symmetric", p.Symmetric(0.05)},
		{"Asymmetric", p.Asymmetric(0.02, 0.08)},
		{"Unidirectional", p.Unidirectional(0.01, 0.025)},
		{"Constrained", p.Constrained(0.05, 0.005)},
		{"MutualExclusive", p.MutualExclusive(0.05)},
		{"SlottedZheng", p.SlottedZhengTime(0.05)},
		{"SlottedCode", p.SlottedCodeTime(0.05)},
		{"Table1", p.Table1Latency(nd.Disco, 0.05, 0.01)},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || c.v <= 0 {
			t.Errorf("%s = %v", c.name, c.v)
		}
	}
	if nd.MinBeacons(40, 10) != 4 {
		t.Error("MinBeacons wrong")
	}
	if pc := nd.CollisionProbability(10, 0.01); pc <= 0 || pc >= 1 {
		t.Errorf("CollisionProbability = %v", pc)
	}
}

func TestProtocolsThroughPublicAPI(t *testing.T) {
	slotLen, omega := nd.Ticks(1000), nd.Ticks(36)
	disco, err := nd.NewDisco(3, 5, slotLen, omega)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := disco.DeviceFullDuplex()
	if err != nil {
		t.Fatal(err)
	}
	ana, err := nd.Analyze(dev.B, dev.C, nd.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ana.Deterministic {
		t.Error("Disco (full duplex) should be deterministic")
	}
	if _, err := nd.NewDiffcode(4, slotLen, omega); err != nil {
		t.Errorf("Diffcode: %v", err)
	}
	if _, err := nd.NewUConnect(5, slotLen, omega); err != nil {
		t.Errorf("UConnect: %v", err)
	}
	if _, err := nd.NewSearchlight(8, true, slotLen, omega); err != nil {
		t.Errorf("Searchlight: %v", err)
	}
}

func TestBLEPresetsThroughPublicAPI(t *testing.T) {
	for _, preset := range []nd.PI{nd.BLEFastAdv, nd.BLEBalanced, nd.BLELowPower} {
		if err := preset.Validate(); err != nil {
			t.Errorf("%s: %v", preset.Name, err)
		}
	}
}

func TestSimulationThroughPublicAPI(t *testing.T) {
	u, err := nd.Unidirectional(36, 1000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := nd.PairLatencies(
		nd.Device{B: u.Sender}, nd.Device{C: u.Listener},
		50, nd.SimConfig{Horizon: 4 * u.WorstCase, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 0 {
		t.Errorf("misses = %d", stats.Misses)
	}
	if stats.Max > u.WorstCase+36 {
		t.Errorf("max %v exceeds worst case %v", stats.Max, u.WorstCase)
	}
}

func TestMutualExclusiveThroughPublicAPI(t *testing.T) {
	q, err := nd.MutualExclusive(36, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	covered, worst := nd.VerifyMutualExclusive(q)
	if !covered {
		t.Fatal("quadruple not covered")
	}
	p := nd.Params{Omega: 36, Alpha: 1}
	if r := float64(worst) / p.MutualExclusive(q.Eta(1)); r < 0.95 || r > 1.1 {
		t.Errorf("ratio to Thm C.1 = %v", r)
	}
}

func TestSolveRedundancyThroughPublicAPI(t *testing.T) {
	p := nd.Params{Omega: 36, Alpha: 1}
	sol, err := nd.SolveRedundancy(p, 0.05, 0.0005, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Redundancy() < 1 || sol.Latency <= 0 {
		t.Errorf("solution implausible: %+v", sol)
	}
}

func TestTickConversions(t *testing.T) {
	if nd.Second != 1000*nd.Millisecond || nd.Millisecond != 1000*nd.Microsecond {
		t.Error("tick constants inconsistent")
	}
}

func TestSlotDomainThroughPublicAPI(t *testing.T) {
	a := nd.SlotSchedule{Period: 15, Active: []int{0, 3, 5, 6, 9, 10, 12}}
	worst, ok := nd.SlotWorstCase(a, a)
	if !ok {
		t.Fatal("Disco(3,5) slot schedule not deterministic")
	}
	if worst > 15 {
		t.Errorf("worst %d exceeds CRT bound 15", worst)
	}
}

func TestMultichannelThroughPublicAPI(t *testing.T) {
	cfg := nd.BLEMultichannel(20*nd.Millisecond, 128, 30*nd.Millisecond, 30*nd.Millisecond)
	res, err := nd.AnalyzeMultichannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Error("continuous 3-channel scanning should be deterministic")
	}
}

func TestLifetimePlanThroughPublicAPI(t *testing.T) {
	plan, err := nd.LifetimePlan(nd.NRF52, 128, nd.CR2032Capacity, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 || plan[1].LifetimeDays <= plan[0].LifetimeDays {
		t.Errorf("plan implausible: %+v", plan)
	}
}

func TestBLE3ScenarioThroughPublicAPI(t *testing.T) {
	sc, err := nd.ScenarioPreset("ble3-fast")
	if err != nil {
		t.Fatal(err)
	}
	sc.Trials = 50
	res, err := nd.RunScenario(sc, nd.EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic || res.FailureRate != 0 {
		t.Fatalf("ble3-fast should discover deterministically: %+v", res.Latency)
	}
	if len(res.PerChannel) != 3 {
		t.Fatalf("want a 3-row per-channel breakdown, got %+v", res.PerChannel)
	}
	if nd.RenderScenarioChannels([]nd.ScenarioResult{res}) == "" {
		t.Error("per-channel renderer produced nothing")
	}
	slot, err := nd.SuiteScenarios("slotgrid")
	if err != nil {
		t.Fatal(err)
	}
	slot[0].Trials = 50
	sres, err := nd.RunScenario(slot[0], nd.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Deterministic || sres.FailureRate != 0 {
		t.Fatalf("slot-grid scenario should discover deterministically: %+v", sres.Latency)
	}
}
