package nd

import (
	"io"

	"repro/internal/engine"
	"repro/internal/obs"
)

// The scenario engine: declarative, JSON-serializable experiment specs, a
// registry of named presets and suites, parameter sweeps (fixed grids and
// adaptive coarse-to-fine searches), and a parallel Monte-Carlo executor
// whose aggregate results are bit-identical for any worker count (each
// trial runs on its own RNG stream derived from the scenario's identity
// hash and trial index).
type (
	// Scenario is one declarative experiment: protocol + population +
	// channel model + optional churn + trial count.
	Scenario = engine.Scenario
	// ProtocolSpec names a protocol construction and its parameters.
	ProtocolSpec = engine.ProtocolSpec
	// ChannelSpec selects channel and radio semantics.
	ChannelSpec = engine.ChannelSpec
	// ChurnSpec switches a scenario to the mobility workload.
	ChurnSpec = engine.ChurnSpec
	// HorizonSpec resolves the simulated duration.
	HorizonSpec = engine.HorizonSpec
	// EngineOptions tunes execution (worker count, trial override,
	// streaming aggregation).
	EngineOptions = engine.Options
	// ScenarioResult is the aggregate outcome of one scenario.
	ScenarioResult = engine.Aggregate
	// ChannelStat is one advertising channel's row of a multi-channel
	// scenario's per-channel breakdown: Monte-Carlo discovery counts by
	// channel, the per-channel packet traffic and collision accounting of
	// the multi-node kinds ("multichannel-group", "multichannel-churn"),
	// plus the exact branch-entry analysis.
	ChannelStat = engine.ChannelStat
	// SuiteResult is the JSON document ndscen emits.
	SuiteResult = engine.SuiteResult
	// SweepSpec is a first-class parameter sweep: a base scenario plus
	// named axes expanded into a cartesian scenario grid.
	SweepSpec = engine.SweepSpec
	// SweepAxis ranges one scenario field over a value list.
	SweepAxis = engine.SweepAxis
	// StreamMode selects the aggregation strategy (auto/on/off).
	StreamMode = engine.StreamMode
	// AdaptiveSpec is a coarse-to-fine parameter search: sweep axes plus
	// an objective, refined by bracketing the best point each round.
	AdaptiveSpec = engine.AdaptiveSpec
	// AdaptiveResult is the full refinement trace of an adaptive search.
	AdaptiveResult = engine.AdaptiveResult
	// AdaptiveRound is one round of an adaptive trace: newly evaluated
	// points, the best point so far, and the per-axis brackets.
	AdaptiveRound = engine.AdaptiveRound
	// AdaptivePoint is one evaluated point of an adaptive search.
	AdaptivePoint = engine.AdaptivePoint
	// AxisBracket is one axis's refinement interval and convergence state.
	AxisBracket = engine.AxisBracket
)

// Observability types, re-exported from the zero-dependency obs package.
// All of them live OUTSIDE the engine's determinism contract: metrics
// describe how a run executed (wall time, throughput, worker utilization,
// cache traffic), never what it computed, and are structurally excluded
// from golden comparison.
type (
	// RunMetrics is the per-run execution record EngineOptions.Metrics
	// fills: wall time, trials/sec, per-worker busy fractions, build-cache
	// traffic, the streamed-vs-exact aggregation split and the peak
	// accumulator memory estimate.
	RunMetrics = obs.RunMetrics
	// PointMetrics is the per-scenario slice of a run's metrics, attached
	// to every ScenarioResult under its "runtime" key.
	PointMetrics = obs.PointMetrics
	// CacheStats counts schedule-analysis cache hits, misses and
	// evictions over one run.
	CacheStats = obs.CacheStats
	// Progress is one snapshot delivered to EngineOptions.Progress:
	// points/trials done vs total, elapsed time and an ETA estimate.
	Progress = obs.Progress
)

// Streaming-aggregator modes for EngineOptions.Stream: StreamAuto engages
// the bounded-memory accumulator above the engine's sample threshold;
// StreamOn and StreamOff force the choice.
const (
	StreamAuto = engine.StreamAuto
	StreamOn   = engine.StreamOn
	StreamOff  = engine.StreamOff
)

// RunScenario executes one scenario, sharding its Monte-Carlo trials
// across the configured worker pool.
func RunScenario(sc Scenario, opt EngineOptions) (ScenarioResult, error) {
	return engine.RunScenario(sc, opt)
}

// RunScenarios executes the scenarios in order (each internally parallel).
func RunScenarios(scenarios []Scenario, opt EngineOptions) ([]ScenarioResult, error) {
	return engine.RunSuite(scenarios, opt)
}

// RunSuite executes a named registry suite.
func RunSuite(name string, opt EngineOptions) ([]ScenarioResult, error) {
	scenarios, err := engine.Suite(name)
	if err != nil {
		return nil, err
	}
	return engine.RunSuite(scenarios, opt)
}

// RunSweep expands a parameter sweep and runs every grid point
// concurrently over one shared worker pool, returning one aggregate per
// point in grid order (first axis slowest). Each point's aggregate is
// bit-identical for any worker count.
func RunSweep(sp SweepSpec, opt EngineOptions) ([]ScenarioResult, error) {
	return engine.RunSweep(sp, opt)
}

// ExpandSweep materializes a sweep's scenario matrix without running it.
func ExpandSweep(sp SweepSpec) ([]Scenario, error) { return sp.Expand() }

// SweepPreset returns a fresh copy of a named registry sweep.
func SweepPreset(name string) (SweepSpec, error) { return engine.SweepPreset(name) }

// SweepPresets lists the registry's sweep preset names.
func SweepPresets() []string { return engine.SweepPresets() }

// SweepFields lists the scenario field paths a sweep axis may range over.
func SweepFields() []string { return engine.SweepFieldNames() }

// RenderSweepTable renders sweep results with axis-value columns, one row
// per grid point.
func RenderSweepTable(sp SweepSpec, results []ScenarioResult) string {
	return engine.RenderSweepTable(sp, results)
}

// RunAdaptive executes a coarse-to-fine adaptive search: the coarse axis
// grid first, then refinement rounds that subdivide the bracket around the
// best objective value until every axis converges within the tolerance.
// Each round's points run concurrently over one shared worker pool;
// previously evaluated coordinates are memoized, and the whole trace is
// bit-identical for any worker count.
func RunAdaptive(ap AdaptiveSpec, opt EngineOptions) (AdaptiveResult, error) {
	return engine.RunAdaptive(ap, opt)
}

// AdaptivePreset returns a fresh copy of a named registry adaptive sweep.
func AdaptivePreset(name string) (AdaptiveSpec, error) { return engine.AdaptivePreset(name) }

// AdaptivePresets lists the registry's adaptive sweep preset names.
func AdaptivePresets() []string { return engine.AdaptivePresets() }

// AdaptiveObjectives lists the aggregate field paths an adaptive search
// may optimize (e.g. "latency.mean", "bound_ratio").
func AdaptiveObjectives() []string { return engine.ObjectiveNames() }

// RenderAdaptiveTable renders an adaptive result as a refinement-trace
// table with the final brackets and convergence verdict.
func RenderAdaptiveTable(res AdaptiveResult) string {
	return engine.RenderAdaptiveTable(res)
}

// WriteAdaptiveJSON emits an adaptive refinement trace as deterministic,
// indented JSON.
func WriteAdaptiveJSON(w io.Writer, res AdaptiveResult) error {
	return engine.WriteAdaptiveJSON(w, res)
}

// ScenarioPreset returns a fresh copy of a named registry scenario.
func ScenarioPreset(name string) (Scenario, error) { return engine.Preset(name) }

// ScenarioPresets lists the registry's preset names.
func ScenarioPresets() []string { return engine.Presets() }

// ScenarioSuites lists the registry's suite names.
func ScenarioSuites() []string { return engine.Suites() }

// SuiteScenarios returns fresh copies of a named suite's scenarios.
func SuiteScenarios(name string) ([]Scenario, error) { return engine.Suite(name) }

// RenderScenarioTable renders aggregates as an aligned text table.
func RenderScenarioTable(results []ScenarioResult) string {
	return engine.RenderTable(results)
}

// RenderScenarioCDF renders pooled latency CDFs as an ASCII plot.
func RenderScenarioCDF(results []ScenarioResult) string {
	return engine.RenderCDF(results)
}

// RenderScenarioChannels renders the per-channel breakdown of
// multi-channel results — discovery shares, the multi-node kinds'
// per-channel transmission/collision columns, and the exact branch
// analysis — or "" when none carries one.
func RenderScenarioChannels(results []ScenarioResult) string {
	return engine.RenderChannels(results)
}

// WriteScenarioJSON emits results as deterministic, indented JSON.
func WriteScenarioJSON(w io.Writer, res SuiteResult) error {
	return engine.WriteJSON(w, res)
}

// RenderRunMetrics renders a run's execution record as a short multi-line
// summary (totals, throughput, worker utilization, cache traffic,
// aggregation split and peak accumulator memory).
func RenderRunMetrics(m RunMetrics) string {
	return engine.RenderRunMetrics(m)
}
