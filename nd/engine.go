package nd

import (
	"io"

	"repro/internal/engine"
)

// The scenario engine: declarative, JSON-serializable experiment specs, a
// registry of named presets and suites, and a parallel Monte-Carlo
// executor whose aggregate results are bit-identical for any worker count
// (each trial runs on its own RNG stream derived from the scenario's
// identity hash and trial index).
type (
	// Scenario is one declarative experiment: protocol + population +
	// channel model + optional churn + trial count.
	Scenario = engine.Scenario
	// ProtocolSpec names a protocol construction and its parameters.
	ProtocolSpec = engine.ProtocolSpec
	// ChannelSpec selects channel and radio semantics.
	ChannelSpec = engine.ChannelSpec
	// ChurnSpec switches a scenario to the mobility workload.
	ChurnSpec = engine.ChurnSpec
	// HorizonSpec resolves the simulated duration.
	HorizonSpec = engine.HorizonSpec
	// EngineOptions tunes execution (worker count, trial override).
	EngineOptions = engine.Options
	// ScenarioResult is the aggregate outcome of one scenario.
	ScenarioResult = engine.Aggregate
	// SuiteResult is the JSON document ndscen emits.
	SuiteResult = engine.SuiteResult
)

// RunScenario executes one scenario, sharding its Monte-Carlo trials
// across the configured worker pool.
func RunScenario(sc Scenario, opt EngineOptions) (ScenarioResult, error) {
	return engine.RunScenario(sc, opt)
}

// RunScenarios executes the scenarios in order (each internally parallel).
func RunScenarios(scenarios []Scenario, opt EngineOptions) ([]ScenarioResult, error) {
	return engine.RunSuite(scenarios, opt)
}

// RunSuite executes a named registry suite.
func RunSuite(name string, opt EngineOptions) ([]ScenarioResult, error) {
	scenarios, err := engine.Suite(name)
	if err != nil {
		return nil, err
	}
	return engine.RunSuite(scenarios, opt)
}

// ScenarioPreset returns a fresh copy of a named registry scenario.
func ScenarioPreset(name string) (Scenario, error) { return engine.Preset(name) }

// ScenarioPresets lists the registry's preset names.
func ScenarioPresets() []string { return engine.Presets() }

// ScenarioSuites lists the registry's suite names.
func ScenarioSuites() []string { return engine.Suites() }

// SuiteScenarios returns fresh copies of a named suite's scenarios.
func SuiteScenarios(name string) ([]Scenario, error) { return engine.Suite(name) }

// RenderScenarioTable renders aggregates as an aligned text table.
func RenderScenarioTable(results []ScenarioResult) string {
	return engine.RenderTable(results)
}

// RenderScenarioCDF renders pooled latency CDFs as an ASCII plot.
func RenderScenarioCDF(results []ScenarioResult) string {
	return engine.RenderCDF(results)
}

// WriteScenarioJSON emits results as deterministic, indented JSON.
func WriteScenarioJSON(w io.Writer, res SuiteResult) error {
	return engine.WriteJSON(w, res)
}
