// Package nd is the public API of this repository: a library for analyzing,
// constructing and simulating deterministic neighbor-discovery (ND)
// protocols, reproducing "On Optimal Neighbor Discovery" (Kindt &
// Chakraborty, SIGCOMM 2019).
//
// The library is organized around four activities:
//
//   - Bounds. Params bundles the radio constants (packet airtime ω and
//     power ratio α) and exposes every fundamental bound of the paper as a
//     method: Symmetric (Theorem 5.5), Asymmetric (Theorem 5.7),
//     Unidirectional (Theorem 5.4), Constrained (Theorem 5.6),
//     MutualExclusive (Theorem C.1), the slotted-protocol limits of
//     Section 6 and the relaxed-assumption variants of Appendix A.
//
//   - Analysis. Analyze computes, exactly and in integer microseconds, the
//     worst-case and mean discovery latency of any periodic pair of beacon
//     and reception-window schedules, along with determinism, redundancy
//     and coverage diagnostics (the paper's Section 4 coverage maps).
//
//   - Construction. OptimalSymmetric, OptimalAsymmetric, OptimalConstrained
//     and MutualExclusive build schedules that meet the corresponding
//     bounds with equality; Disco, UConnect, Searchlight, Diffcode and the
//     PI (BLE-like) family provide the classic protocols for comparison.
//
//   - Simulation. Simulate, PairLatencies and GroupDiscovery run a
//     discrete-event multi-device simulation with an ALOHA collision
//     channel, half-duplex radios and optional beacon jitter.
//
// All time quantities are integer Ticks (1 tick = 1 µs). Closed-form bounds
// return float64 ticks, since they are generally fractional.
package nd

import (
	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/energy"
	"repro/internal/multichannel"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/timebase"
)

// Ticks is a time instant or duration in integer microseconds.
type Ticks = timebase.Ticks

// Common tick quantities.
const (
	Microsecond = timebase.Microsecond
	Millisecond = timebase.Millisecond
	Second      = timebase.Second
)

// Params bundles the radio constants all bounds depend on: packet airtime
// ω (Omega) and transmit/receive power ratio α (Alpha). See the method set
// of core.Params for the full list of bounds.
type Params = core.Params

// RadioOverheads models non-ideal radio switching times (Appendix A.2/A.5).
type RadioOverheads = core.RadioOverheads

// SlottedProtocol enumerates the Table 1 protocol rows for
// Params.Table1Latency.
type SlottedProtocol = core.SlottedProtocol

// The Table 1 protocols.
const (
	Diffcodes    = core.Diffcodes
	Disco        = core.Disco
	SearchlightS = core.SearchlightS
	UConnect     = core.UConnect
)

// Schedule building blocks (Definitions 3.1–3.3 of the paper).
type (
	// Beacon is one transmission: start time and airtime.
	Beacon = schedule.Beacon
	// Window is one reception window: start time and length.
	Window = schedule.Window
	// BeaconSeq is a finite beacon sequence repeated with period TB.
	BeaconSeq = schedule.BeaconSeq
	// WindowSeq is a finite reception-window sequence repeated with TC.
	WindowSeq = schedule.WindowSeq
	// Device couples the beacon and window sequences of one device.
	Device = schedule.Device
)

// NewUniformWindows builds a listener with one window of length d per
// period k·d — the shape Theorem 5.3 identifies as optimal.
func NewUniformWindows(d Ticks, k int) (WindowSeq, error) {
	return schedule.NewUniformWindows(d, k)
}

// NewEqualGapBeacons builds a sender with m equally spaced beacons of
// airtime omega, gap gap, first beacon at phase.
func NewEqualGapBeacons(m int, gap, omega, phase Ticks) (BeaconSeq, error) {
	return schedule.NewEqualGapBeacons(m, gap, omega, phase)
}

// NewBeaconsAt builds a beacon sequence from explicit times.
func NewBeaconsAt(times []Ticks, omega, period Ticks) (BeaconSeq, error) {
	return schedule.NewBeaconsAt(times, omega, period)
}

// NewWindowsAt builds a window sequence from explicit windows.
func NewWindowsAt(windows []Window, period Ticks) (WindowSeq, error) {
	return schedule.NewWindowsAt(windows, period)
}

// Analysis is the exact coverage-based evaluation of a schedule pair; see
// coverage.Result for field documentation.
type Analysis = coverage.Result

// AnalysisOptions selects the modeling assumptions of Appendix A.
type AnalysisOptions = coverage.Options

// Analyze computes the exact discovery properties of sender b against
// listener c: determinism, worst-case and mean latency, redundancy.
func Analyze(b BeaconSeq, c WindowSeq, opt AnalysisOptions) (Analysis, error) {
	return coverage.Analyze(b, c, opt)
}

// MinBeacons is Theorem 4.3: the minimum number of beacons needed for
// deterministic discovery against a listener with period tc and total
// window time sumD per period.
func MinBeacons(tc, sumD Ticks) int { return core.MinBeacons(tc, sumD) }

// CollisionProbability is Equation 12: the per-beacon collision probability
// among s senders with channel utilization beta.
func CollisionProbability(s int, beta float64) float64 {
	return core.CollisionProbability(s, beta)
}

// Optimal constructions (Section 5 / Appendix C of the paper).
type (
	// OptimalUnidirectional is a bound-tight one-way configuration.
	OptimalUnidirectional = optimal.Unidirectional
	// OptimalPair is a bound-tight bidirectional configuration.
	OptimalPair = optimal.Pair
	// Quadruple is the Appendix C mutual-exclusive configuration.
	Quadruple = optimal.Quadruple
)

// Unidirectional builds the optimal one-way pair with window length d,
// listener period k·d and beacon gap (m·k−1)·d (Theorems 5.1–5.4).
func Unidirectional(omega, d Ticks, k, m int) (OptimalUnidirectional, error) {
	return optimal.NewUnidirectional(omega, d, k, m)
}

// UnidirectionalForDutyCycles builds the optimal one-way pair closest to
// the requested transmit and receive duty-cycles.
func UnidirectionalForDutyCycles(omega Ticks, beta, gamma float64) (OptimalUnidirectional, error) {
	return optimal.ForDutyCycles(omega, beta, gamma)
}

// OptimalSymmetric builds a symmetric bidirectional protocol meeting
// Theorem 5.5's bound 4αω/η².
func OptimalSymmetric(omega Ticks, alpha, eta float64) (OptimalPair, error) {
	return optimal.NewSymmetric(omega, alpha, eta)
}

// OptimalAsymmetric builds an asymmetric bidirectional protocol meeting
// Theorem 5.7's bound 4αω/(ηE·ηF).
func OptimalAsymmetric(omega Ticks, alpha, etaE, etaF float64) (OptimalPair, error) {
	return optimal.NewAsymmetric(omega, alpha, etaE, etaF)
}

// OptimalConstrained builds a symmetric protocol whose channel utilization
// never exceeds betaMax, meeting Theorem 5.6's bound.
func OptimalConstrained(omega Ticks, alpha, eta, betaMax float64) (OptimalPair, error) {
	return optimal.NewConstrained(omega, alpha, eta, betaMax)
}

// MutualExclusive builds the Appendix C quadruple meeting Theorem C.1's
// bound 2αω/η² for one-way discovery, sized for the given duty-cycle.
func MutualExclusive(omega Ticks, alpha, eta float64) (Quadruple, error) {
	return optimal.ForEta(omega, alpha, eta)
}

// VerifyMutualExclusive exhaustively certifies a quadruple: every offset
// discovers in at least one direction; returns the worst-case latency.
func VerifyMutualExclusive(q Quadruple) (covered bool, worst Ticks) {
	return optimal.VerifyMutualExclusive(q)
}

// Classic protocols (Section 6 / Table 1 of the paper).
type (
	// Slotted is a slotted protocol schedule (Disco, U-Connect, …).
	Slotted = protocols.Slotted
	// PI is a periodic-interval (BLE-like) protocol configuration.
	PI = protocols.PI
)

// NewDisco builds Disco with primes p1 < p2.
func NewDisco(p1, p2 int, slotLen, omega Ticks) (*Slotted, error) {
	return protocols.NewDisco(p1, p2, slotLen, omega)
}

// NewUConnect builds U-Connect with odd prime p.
func NewUConnect(p int, slotLen, omega Ticks) (*Slotted, error) {
	return protocols.NewUConnect(p, slotLen, omega)
}

// NewSearchlight builds Searchlight (striped selects Searchlight-S).
func NewSearchlight(t int, striped bool, slotLen, omega Ticks) (*Slotted, error) {
	return protocols.NewSearchlight(t, striped, slotLen, omega)
}

// NewDiffcode builds the difference-set schedule of order q.
func NewDiffcode(q int, slotLen, omega Ticks) (*Slotted, error) {
	return protocols.NewDiffcode(q, slotLen, omega)
}

// BLE presets for the PI family.
var (
	BLEFastAdv  = protocols.BLEFastAdv
	BLEBalanced = protocols.BLEBalanced
	BLELowPower = protocols.BLELowPower
)

// Simulation types.
type (
	// SimNode is one simulated device with a phase offset.
	SimNode = sim.Node
	// SimConfig selects channel and radio semantics.
	SimConfig = sim.Config
	// SimResult is one simulation run's outcome.
	SimResult = sim.Result
	// SimStats summarizes Monte-Carlo latency samples.
	SimStats = sim.Stats
	// GroupResult aggregates a many-device experiment.
	GroupResult = sim.GroupResult
)

// Simulate runs the discrete-event simulation of the node set.
func Simulate(nodes []SimNode, cfg SimConfig) (SimResult, error) {
	return sim.Run(nodes, cfg)
}

// PairLatencies Monte-Carlos one-way discovery latency between a sender
// and a receiver device with random phases.
func PairLatencies(e, f Device, trials int, cfg SimConfig) (SimStats, error) {
	return sim.PairLatencies(e, f, trials, cfg)
}

// GroupDiscovery Monte-Carlos s identical devices with random phases.
func GroupDiscovery(dev Device, s, trials int, cfg SimConfig) (GroupResult, error) {
	return sim.GroupDiscovery(dev, s, trials, cfg)
}

// OptimalPI expresses the optimal symmetric construction as BLE-like PI
// parameters (Ta, Ts, Ds): configure any periodic-interval stack with
// these values and it performs at the Theorem 5.5 bound.
func OptimalPI(omega Ticks, alpha, eta float64) (PI, error) {
	return protocols.OptimalPI(omega, alpha, eta)
}

// AssistResult evaluates the mutual-assistance extension of Appendix C.
type AssistResult = optimal.AssistResult

// EvaluateAssistance measures two-way discovery when the first (one-way)
// discovery is followed by an assisted reply in the sender's announced
// next reception window (the Griassdi mechanism the paper builds on).
func EvaluateAssistance(q Quadruple) AssistResult {
	return optimal.EvaluateAssistance(q)
}

// ChurnDiscovery simulates devices arriving and departing (bounded contact
// windows) and measures discovery latency from the moment a pair is
// jointly present.
func ChurnDiscovery(dev Device, s, trials int, stay Ticks, cfg SimConfig) (SimStats, error) {
	return sim.ChurnDiscovery(dev, s, trials, stay, cfg)
}

// Contact is one pair encounter record from a churn simulation.
type Contact = sim.Contact

// ChurnContacts returns the raw per-pair contact records of the churn
// scenario, for binning discovery ratios by contact duration.
func ChurnContacts(dev Device, s, trials int, stay Ticks, cfg SimConfig) ([]Contact, error) {
	return sim.ChurnContacts(dev, s, trials, stay, cfg)
}

// Stream interfaces for aperiodic schedules (Appendix A.1).
type (
	// BeaconStream yields beacons of a possibly aperiodic B∞.
	BeaconStream = schedule.BeaconStream
	// WindowStream yields windows of a possibly aperiodic C∞.
	WindowStream = schedule.WindowStream
	// StreamAnalysis is the bounded-horizon result for stream pairs.
	StreamAnalysis = coverage.StreamResult
	// DriftingWindows is a built-in non-repetitive window stream whose
	// spacing grows every period.
	DriftingWindows = coverage.DriftingWindows
)

// AnalyzeStreams measures discovery latency for arbitrary (aperiodic)
// streams over a bounded horizon — the Appendix A.1 evaluator.
func AnalyzeStreams(b BeaconStream, c WindowStream, horizon, step Ticks) (StreamAnalysis, error) {
	return coverage.AnalyzeStreams(b, c, horizon, step)
}

// CoverageMap is the explicit Section 4.1 coverage map (one Ωi per beacon),
// renderable as ASCII art in the style of the paper's Figure 3b.
type CoverageMap = coverage.Map

// BuildCoverageMap constructs the coverage map of the first numBeacons
// beacons of b against c.
func BuildCoverageMap(b BeaconSeq, c WindowSeq, numBeacons int, opt AnalysisOptions) (CoverageMap, error) {
	return coverage.BuildMap(b, c, numBeacons, opt)
}

// RedundancySolution is an Appendix B operating point.
type RedundancySolution = collision.Solution

// SolveRedundancy finds the redundancy degree and duty-cycle split that
// minimize the latency L′ achieved with failure rate at most pf among s
// contending devices (Appendix B, Equations 32/33).
func SolveRedundancy(p Params, eta, pf float64, s int) (RedundancySolution, error) {
	return collision.SolveFractional(p, eta, pf, s, 64)
}

// Slot-domain analysis: the slotted literature's own model, as an
// independent verification path next to the tick-domain engine.
type SlotSchedule = slots.Schedule

// SlotWorstCase computes the exact worst-case slot count for two
// slot-aligned schedules over all initial phases.
func SlotWorstCase(a, b SlotSchedule) (int, bool) { return slots.WorstCase(a, b) }

// Multi-channel BLE analysis.
type (
	// MultichannelConfig is a BLE-like 3-channel advertiser/scanner pair.
	MultichannelConfig = multichannel.Config
	// MultichannelResult is its exact analysis.
	MultichannelResult = multichannel.Result
)

// BLEMultichannel returns the standard 3-channel BLE configuration.
func BLEMultichannel(ta, omega, ts, ds Ticks) MultichannelConfig {
	return multichannel.BLE(ta, omega, ts, ds)
}

// AnalyzeMultichannel computes the exact worst-case discovery latency of a
// multi-channel configuration over all relative phases.
func AnalyzeMultichannel(cfg MultichannelConfig) (MultichannelResult, error) {
	return multichannel.Analyze(cfg)
}

// Energy model: battery-life planning for real radios.
type (
	// RadioProfile carries a radio's per-state current draw.
	RadioProfile = energy.RadioProfile
	// PlanPoint is one row of a latency/lifetime plan.
	PlanPoint = energy.PlanPoint
)

// Radio profiles and battery capacities.
var (
	NRF52          = energy.NRF52
	CC2640         = energy.CC2640
	CR2032Capacity = energy.CR2032Capacity
)

// LifetimePlan maps worst-case latency targets (seconds) to the minimum
// duty-cycle the fundamental bound admits and the resulting battery life.
func LifetimePlan(r RadioProfile, omega Ticks, capacityMAh float64, latencies []float64) ([]PlanPoint, error) {
	return energy.Plan(r, omega, capacityMAh, latencies)
}
