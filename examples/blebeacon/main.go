// blebeacon: how close do real BLE advertising/scanning configurations get
// to the theoretical optimum?
//
// The three standard BLE operating points are "ble-fast", "ble-balanced"
// and "ble-lowpower" in the engine registry: advertiser against scanner
// with the advDelay jitter real BLE ships. These three points analyze as
// deterministic, but all sit above the fundamental bound at their budgets
// — the gap the paper's Section 7 quantifies. (Parametrizations whose
// scan interval divides the advertising interval are worse still: they
// open the Theorem 5.3 coverage gaps and never discover at some offsets,
// which is why the engine reports coverage before latency.)
//
// Run with: go run ./examples/blebeacon
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	fmt.Println("BLE configurations vs the fundamental bound (Theorem 5.7)")
	fmt.Println()

	var results []nd.ScenarioResult
	for _, name := range []string{"ble-fast", "ble-balanced", "ble-lowpower"} {
		sc, err := nd.ScenarioPreset(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nd.RunScenario(sc, nd.EngineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)

		fmt.Printf("%s: advertiser duty-cycle = %.4f%%, scanner duty-cycle = %.3f%%\n",
			name, res.BetaE*100, res.GammaF*100)
		if !res.Deterministic {
			fmt.Printf("  NOT deterministic: only %.2f%% of phase offsets ever discover\n",
				res.CoveredFraction*100)
			fmt.Printf("  with BLE advDelay jitter (0–10 ms): mean %.3f s, p95 %.3f s, misses %d/%d\n",
				res.Latency.Mean/1e6, float64(res.Latency.P95)/1e6, res.Latency.Misses, res.Pairs)
		} else {
			fmt.Printf("  worst-case discovery %.3f s; optimal with the same budgets %.3f s → %.1f× off\n",
				float64(res.ExactWorst)/1e6, res.Bound/1e6, res.BoundRatio)
		}
		fmt.Println()
	}

	fmt.Print(nd.RenderScenarioTable(results))
	fmt.Println("\nTakeaway: these standard BLE points are deterministic but sit above the")
	fmt.Println("bound at their own budgets — the gap the paper's Section 7 quantifies.")
	fmt.Println("Parametrizations whose scan interval divides the advertising interval are")
	fmt.Println("worse still: Theorem 5.3 coverage gaps, never discovering at some offsets.")
}
