// blebeacon: how close do real BLE advertising/scanning configurations get
// to the theoretical optimum?
//
// The paper's introduction motivates the bounds with BLE — billions of
// devices running a three-parameter periodic-interval protocol whose best
// achievable performance was unknown. This example measures three standard
// BLE operating points with the exact coverage engine and compares each to
// the fundamental bound at the same energy budget.
//
// Run with: go run ./examples/blebeacon
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	p := nd.Params{Omega: 128 * nd.Microsecond, Alpha: 1.0} // BLE ADV_IND airtime

	fmt.Println("BLE configurations vs the fundamental bound (Theorem 5.7)")
	fmt.Println()

	for _, preset := range []nd.PI{nd.BLEFastAdv, nd.BLEBalanced, nd.BLELowPower} {
		// Advertiser and scanner as separate devices (the common BLE
		// pairing: a beacon and a phone).
		adv, err := (nd.PI{Ta: preset.Ta, Omega: preset.Omega}).Device()
		if err != nil {
			log.Fatal(err)
		}
		scan, err := (nd.PI{Ts: preset.Ts, Ds: preset.Ds, Omega: preset.Omega}).Device()
		if err != nil {
			log.Fatal(err)
		}

		ana, err := nd.Analyze(adv.B, scan.C, nd.AnalysisOptions{})
		if err != nil {
			log.Fatal(err)
		}

		etaAdv := adv.Eta(p.Alpha)                 // advertiser's duty-cycle (αβ)
		etaScan := scan.Eta(p.Alpha)               // scanner's duty-cycle (γ)
		bound := p.Asymmetric(2*etaAdv, 2*etaScan) // each budget split optimally

		fmt.Printf("%s: adv every %v, scan %v/%v\n", preset.Name,
			preset.Ta, preset.Ds, preset.Ts)
		fmt.Printf("  duty-cycles: advertiser %.4f%%, scanner %.3f%%\n",
			etaAdv*100, etaScan*100)
		if !ana.Deterministic {
			fmt.Printf("  NOT deterministic: only %.2f%% of phase offsets ever discover\n",
				ana.CoveredFraction*100)
			// BLE's scan interval being a multiple of the advertising
			// interval creates exactly the coverage gaps Theorem 5.3
			// warns about; real BLE escapes via the random advDelay.
			stats, err := nd.PairLatencies(adv, scan, 300, nd.SimConfig{
				Horizon: 30 * nd.Second, Jitter: 10 * nd.Millisecond, Seed: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  with BLE advDelay jitter (0–10 ms): mean %.3f s, p95 %.3f s, misses %d/%d\n",
				stats.Mean/1e6, float64(stats.P95)/1e6, stats.Misses, stats.N)
		} else {
			fmt.Printf("  worst-case discovery: %.3f s (mean %.3f s)\n",
				float64(ana.WorstLatency)/1e6, ana.MeanLatency/1e6)
			fmt.Printf("  optimal protocol with the same two budgets: %.3f s → BLE is %.1f× off\n",
				bound/1e6, float64(ana.WorstLatency)/bound)
		}
		fmt.Println()
	}

	fmt.Println("Takeaway: parametrizations whose scan interval divides the advertising")
	fmt.Println("interval can be non-deterministic (coverage gaps), and even deterministic")
	fmt.Println("ones sit well above the bound — the gap the paper's Section 7 quantifies.")
}
