// sensornet: asymmetric discovery between battery sensors and a powered
// gateway.
//
// A sensor that must last years can only afford η ≈ 0.5 %; the wall-powered
// gateway can spend 10 %. Theorem 5.7 says the achievable two-way worst
// case depends only on the product ηE·ηF — so the gateway's budget directly
// buys down the sensor's latency. This example builds the optimal
// asymmetric pair, verifies both directions exactly, and shows what the
// same total energy achieves under a naive equal split.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}

	etaSensor := 0.005 // 0.5 % — multi-year battery life
	etaGateway := 0.10 // 10 % — powered

	pair, err := nd.OptimalAsymmetric(p.Omega, p.Alpha, etaSensor, etaGateway)
	if err != nil {
		log.Fatal(err)
	}

	// Verify both directions with the exact engine.
	gwFindsSensor, err := nd.Analyze(pair.E.B, pair.F.C, nd.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sensorFindsGw, err := nd.Analyze(pair.F.B, pair.E.C, nd.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Asymmetric sensor/gateway discovery (Theorem 5.7)")
	fmt.Printf("  sensor:  η = %.2f%% → beacon every %v, listen %v per %v\n",
		pair.E.Eta(p.Alpha)*100, pair.E.B.Period/nd.Ticks(pair.E.B.MB()),
		pair.E.C.Windows[0].Len, pair.E.C.Period)
	fmt.Printf("  gateway: η = %.2f%% → beacon every %v, listen %v per %v\n",
		pair.F.Eta(p.Alpha)*100, pair.F.B.Period/nd.Ticks(pair.F.B.MB()),
		pair.F.C.Windows[0].Len, pair.F.C.Period)
	fmt.Printf("  gateway discovers sensor within %.3f s, sensor discovers gateway within %.3f s\n",
		float64(gwFindsSensor.WorstLatency)/1e6, float64(sensorFindsGw.WorstLatency)/1e6)

	bound := p.Asymmetric(pair.E.Eta(p.Alpha), pair.F.Eta(p.Alpha))
	worst := gwFindsSensor.WorstLatency
	if sensorFindsGw.WorstLatency > worst {
		worst = sensorFindsGw.WorstLatency
	}
	fmt.Printf("  bound 4αω/(ηE·ηF) = %.3f s → optimality ratio %.4f\n",
		bound/1e6, float64(worst)/bound)

	// The proof's balance condition in action: neither direction wastes
	// energy because LE ≈ LF.
	fmt.Printf("  balance: |L_EF − L_FE| / L = %.2f%% (optimal protocols equalize both directions)\n",
		100*absDiff(gwFindsSensor.WorstLatency, sensorFindsGw.WorstLatency)/float64(worst))

	// Comparison: same *total* energy, split equally.
	etaEqual := (etaSensor + etaGateway) / 2
	eqPair, err := nd.OptimalSymmetric(p.Omega, p.Alpha, etaEqual)
	if err != nil {
		log.Fatal(err)
	}
	eqAna, err := nd.Analyze(eqPair.E.B, eqPair.F.C, nd.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEqual split of the same total budget (η = %.2f%% each): worst case %.3f s\n",
		etaEqual*100, float64(eqAna.WorstLatency)/1e6)
	fmt.Printf("  Figure 6's message: the equal split is better by ×%.2f — the (1+r)²/4r factor\n",
		float64(worst)/float64(eqAna.WorstLatency))
	fmt.Println("  but the sensor alone would then burn 10× its budget; asymmetry is what")
	fmt.Println("  lets the constrained device stay at 0.5 % while the gateway pays.")

	// Monte-Carlo what a deployment sees: mean latency over random phases.
	stats, err := nd.PairLatencies(
		nd.Device{B: pair.E.B}, nd.Device{C: pair.F.C},
		400, nd.SimConfig{Horizon: 3 * nd.Ticks(worst), Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeployment view (400 random encounters): mean %.3f s, p95 %.3f s, max %.3f s\n",
		stats.Mean/1e6, float64(stats.P95)/1e6, float64(stats.Max)/1e6)
}

func absDiff(a, b nd.Ticks) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}
