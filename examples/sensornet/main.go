// sensornet: asymmetric discovery between battery sensors and a powered
// gateway.
//
// A sensor that must last years can only afford η ≈ 0.5 %; the
// wall-powered gateway can spend 10 %. Theorem 5.7 says the achievable
// two-way worst case depends only on the product ηE·ηF — so the gateway's
// budget directly buys down the sensor's latency. The registry's
// "sensornet" scenario builds the optimal asymmetric pair and Monte-Carlos
// the deployment view.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}

	sc, err := nd.ScenarioPreset("sensornet")
	if err != nil {
		log.Fatal(err)
	}
	res, err := nd.RunScenario(sc, nd.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Asymmetric sensor/gateway discovery (Theorem 5.7)")
	fmt.Printf("  sensor η = %.2f%%, gateway η = %.2f%%\n", res.EtaE*100, res.EtaF*100)
	fmt.Printf("  two-way worst case (slower direction) %.3f s, exact\n",
		float64(res.ExactWorst)/1e6)
	fmt.Printf("  bound 4αω/(ηE·ηF) = %.3f s → optimality ratio %.4f\n",
		res.Bound/1e6, res.BoundRatio)
	fmt.Printf("\nDeployment view (%d random encounters): mean %.3f s, p95 %.3f s, max %.3f s\n\n",
		res.Pairs, res.Latency.Mean/1e6, float64(res.Latency.P95)/1e6, float64(res.Latency.Max)/1e6)
	fmt.Print(nd.RenderScenarioTable([]nd.ScenarioResult{res}))

	// Comparison: the same *total* energy split equally needs both devices
	// at 5.25 % — better latency (Figure 6's (1+r)²/4r factor), but the
	// sensor alone would then burn 10× its budget.
	etaEqual := (0.005 + 0.10) / 2
	fmt.Printf("\nEqual split of the same total budget (η = %.2f%% each) would reach %.3f s,\n",
		etaEqual*100, p.Symmetric(etaEqual)/1e6)
	fmt.Println("but the sensor alone would then burn 10× its budget; asymmetry is what")
	fmt.Println("lets the constrained device stay at 0.5 % while the gateway pays.")
}
