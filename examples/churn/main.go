// churn: neighbor discovery under mobility — devices that walk past each
// other and have only a bounded contact window to meet.
//
// The worst-case bounds answer a deployment question directly: a contact
// lasting at least L = 4αω/η² is guaranteed to be discovered; shorter
// contacts can be missed no matter the protocol. This example simulates a
// population of mobile devices with random arrivals and bins the measured
// discovery ratio by contact duration relative to L.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}
	eta := 0.05

	pair, err := nd.OptimalSymmetric(p.Omega, p.Alpha, eta)
	if err != nil {
		log.Fatal(err)
	}
	worst := pair.WorstCase()
	fmt.Printf("Optimal schedule at η = %.0f%%: guaranteed discovery within L = %.3f s\n",
		eta*100, float64(worst)/1e6)

	// Mobile population: devices arrive at random times and stay 2·L, so
	// pairwise overlaps spread across (0, 2L]. Two channel models: a quiet
	// channel (pairwise geometry only) and a contended one (10 devices,
	// ALOHA collisions, half-duplex radios, light jitter).
	run := func(collisions bool, jitter nd.Ticks) []nd.Contact {
		contacts, err := nd.ChurnContacts(pair.E, 10, 60, 2*worst, nd.SimConfig{
			Horizon:    8 * worst,
			Collisions: collisions,
			HalfDuplex: collisions,
			Jitter:     jitter,
			Seed:       99,
		})
		if err != nil {
			log.Fatal(err)
		}
		return contacts
	}
	// Quiet: pure schedule geometry, no jitter (jitter wider than the
	// reception window would itself break the deterministic tiling).
	quiet := run(false, 0)
	// Busy: collisions, half-duplex, one packet airtime of jitter.
	busy := run(true, p.Omega)

	type bin struct{ lo, hi float64 }
	bins := []bin{{0, 0.25}, {0.25, 0.5}, {0.5, 0.75}, {0.75, 1.0}, {1.0, 1.5}, {1.5, 10}}
	ratio := func(contacts []nd.Contact, b bin) (string, int) {
		total, found := 0, 0
		for _, c := range contacts {
			x := float64(c.Overlap) / float64(worst)
			if x >= b.lo && x < b.hi {
				total++
				if c.Discovered {
					found++
				}
			}
		}
		if total == 0 {
			return "—", 0
		}
		return fmt.Sprintf("%5.1f%%", 100*float64(found)/float64(total)), total
	}

	fmt.Printf("\n%d contacts among 10 devices over 60 trials:\n\n", len(quiet))
	fmt.Printf("%-16s %-10s %-14s %-14s\n", "overlap / L", "contacts", "quiet channel", "busy channel")
	for _, b := range bins {
		label := fmt.Sprintf("[%.2f, %.2f)", b.lo, b.hi)
		if b.hi > 2 {
			label = fmt.Sprintf("≥ %.2f", b.lo)
		}
		q, n := ratio(quiet, b)
		bz, _ := ratio(busy, b)
		fmt.Printf("%-16s %-10d %-14s %-14s\n", label, n, q, bz)
	}

	fmt.Println("\nReading, quiet channel: a contact of x·L delivers exactly the fraction")
	fmt.Println("of phase offsets whose latency is below x·L — linear in x, and 100% once")
	fmt.Println("the contact exceeds L. That is the bound doing deployment planning.")
	fmt.Println()
	fmt.Println("Reading, busy channel: the disjoint-optimal schedule offers ONE reception")
	fmt.Println("chance per L, and each chance collides with probability ≈ Pc — so even")
	fmt.Println("long contacts miss at ≈ Pc per L. This is precisely Appendix B's case for")
	fmt.Println("redundant coverage in crowded networks (see examples/busynetwork).")
}
