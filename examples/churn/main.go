// churn: neighbor discovery under mobility — devices that walk past each
// other and have only a bounded contact window to meet.
//
// The worst-case bounds answer a deployment question directly: a contact
// lasting at least L = 4αω/η² is guaranteed to be discovered; shorter
// contacts can be missed no matter the protocol. The registry's
// "churn-quiet" and "churn-busy" scenarios simulate a mobile population on
// a quiet and a contended channel; the engine bins the measured discovery
// ratio by contact duration relative to L.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	quietSc, err := nd.ScenarioPreset("churn-quiet")
	if err != nil {
		log.Fatal(err)
	}
	busySc, err := nd.ScenarioPreset("churn-busy")
	if err != nil {
		log.Fatal(err)
	}
	results, err := nd.RunScenarios([]nd.Scenario{quietSc, busySc}, nd.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	quiet, busy := results[0], results[1]

	fmt.Printf("Optimal schedule at η = 5%%: guaranteed discovery within L = %.3f s\n",
		float64(quiet.ExactWorst)/1e6)
	fmt.Printf("Devices stay 2·L. Contacts judged: quiet %d, busy %d\n",
		quiet.Pairs, busy.Pairs)
	fmt.Println("(each channel model draws its own arrival population).")

	fmt.Printf("\n%-16s %-20s %-20s\n", "overlap / L", "quiet channel", "busy channel")
	for i := range quiet.ContactBins {
		qb, bb := quiet.ContactBins[i], busy.ContactBins[i]
		label := fmt.Sprintf("[%.2f, %.2f)", qb.Lo, qb.Hi)
		if qb.Hi == 0 {
			label = fmt.Sprintf("≥ %.2f", qb.Lo)
		}
		fmt.Printf("%-16s %6.1f%% of %-8d %6.1f%% of %-8d\n",
			label, qb.Ratio()*100, qb.Contacts, bb.Ratio()*100, bb.Contacts)
	}
	fmt.Println()
	fmt.Print(nd.RenderScenarioTable(results))

	fmt.Println("\nReading, quiet channel: a contact of x·L delivers exactly the fraction")
	fmt.Println("of phase offsets whose latency is below x·L — linear in x, and 100% once")
	fmt.Println("the contact exceeds L. That is the bound doing deployment planning.")
	fmt.Println()
	fmt.Println("Reading, busy channel: the disjoint-optimal schedule offers ONE reception")
	fmt.Println("chance per L, and each chance collides with probability ≈ Pc — Appendix B's")
	fmt.Println("case for redundant coverage in crowded networks (see examples/busynetwork).")
}
