// Quickstart: compute the fundamental neighbor-discovery bound for an
// energy budget, then run the matching "quickstart" scenario from the
// engine registry — the optimal construction cross-checked by Monte-Carlo
// simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	// Radio model: 36 µs packets, transmit power equals receive power —
	// the paper's evaluation setup, with both devices active 2 % of the
	// time. No protocol can guarantee discovery faster than Theorem 5.5's
	// 4αω/η².
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}
	eta := 0.02
	fmt.Printf("Fundamental bound at η = %.0f%%: %.3f s\n", eta*100, p.Symmetric(eta)/1e6)

	// The scenario spec lives in the engine registry; the engine builds
	// the bound-meeting schedule, verifies it exactly with the coverage
	// engine, and Monte-Carlos 500 random phase offsets in parallel.
	sc, err := nd.ScenarioPreset("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	res, err := nd.RunScenario(sc, nd.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Exact analysis: deterministic = %v, worst case = %.3f s\n",
		res.Deterministic, float64(res.ExactWorst)/1e6)
	fmt.Printf("Optimality: measured/bound = %.4f (1.0 = bound met)\n", res.BoundRatio)
	fmt.Printf("Simulation over %d random offsets: mean %.3f s, p95 %.3f s, max %.3f s, misses %d\n\n",
		res.Pairs, res.Latency.Mean/1e6, float64(res.Latency.P95)/1e6,
		float64(res.Latency.Max)/1e6, res.Latency.Misses)
	fmt.Print(nd.RenderScenarioTable([]nd.ScenarioResult{res}))

	fmt.Println("\nEvery simulated latency sits below the exact worst case, and the worst")
	fmt.Println("case meets the bound — the Theorem 5.5 construction doing what it promises.")
	fmt.Println("Try the whole example set:  go run ./cmd/ndscen -suite examples")
}
