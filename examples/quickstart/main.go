// Quickstart: compute the fundamental neighbor-discovery bound for an
// energy budget, build a schedule that meets it, verify the schedule
// exactly, and cross-check with a Monte-Carlo simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	// Radio model: 36 µs packets, transmit power equals receive power —
	// the paper's evaluation setup.
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}

	// Energy budget: both devices may be active 2 % of the time.
	eta := 0.02

	// 1. What does theory promise? No protocol can guarantee discovery
	//    faster than Theorem 5.5's 4αω/η².
	bound := p.Symmetric(eta)
	fmt.Printf("Fundamental bound at η = %.0f%%: %.3f s\n", eta*100, bound/1e6)

	// 2. Build a schedule that meets the bound: a single reception window
	//    per period and equally spaced beacons whose images tile the
	//    listener's period exactly once (Theorems 5.1/5.3).
	pair, err := nd.OptimalSymmetric(p.Omega, p.Alpha, eta)
	if err != nil {
		log.Fatal(err)
	}
	dev := pair.E
	fmt.Printf("Constructed schedule: beacon every %v (β = %.4f), "+
		"listen %v every %v (γ = %.4f)\n",
		dev.B.Period/nd.Ticks(dev.B.MB()), dev.B.Beta(),
		dev.C.Windows[0].Len, dev.C.Period, dev.C.Gamma())

	// 3. Verify exactly: the coverage engine checks every possible phase
	//    offset between the two devices, not a sample of them.
	ana, err := nd.Analyze(dev.B, dev.C, nd.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Exact analysis: deterministic = %v, worst case = %.3f s, mean = %.3f s\n",
		ana.Deterministic, float64(ana.WorstLatency)/1e6, ana.MeanLatency/1e6)
	fmt.Printf("Optimality: measured/bound = %.4f (1.0 = bound met)\n",
		float64(ana.WorstLatency)/p.Symmetric(dev.Eta(p.Alpha)))

	// 4. Cross-check with the event simulator: 500 random phase offsets.
	stats, err := nd.PairLatencies(
		nd.Device{B: dev.B}, nd.Device{C: dev.C},
		500, nd.SimConfig{Horizon: 3 * ana.WorstLatency, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Simulation over %d random offsets: mean %.3f s, p95 %.3f s, max %.3f s, misses %d\n",
		stats.N, stats.Mean/1e6, float64(stats.P95)/1e6, float64(stats.Max)/1e6, stats.Misses)

	// 5. The same budget split badly: all transmit, barely any listening.
	lopsided, err := nd.UnidirectionalForDutyCycles(p.Omega, eta*0.9, eta*0.1/2)
	if err != nil {
		log.Fatal(err)
	}
	bad, err := nd.Analyze(lopsided.Sender, lopsided.Listener, nd.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSame budget, lopsided split (β = %.4f, γ = %.4f): worst case %.3f s — %.1f× worse\n",
		lopsided.Beta(), lopsided.Gamma(), float64(bad.WorstLatency)/1e6,
		float64(bad.WorstLatency)/float64(ana.WorstLatency))
}
