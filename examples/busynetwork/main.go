// busynetwork: neighbor discovery in a crowded room.
//
// With S devices discovering each other simultaneously, beacons collide
// (Equation 12) and the two-device optimum is no longer the right design:
// Theorem 5.6 caps the channel utilization, and Appendix B trades latency
// for redundant coverage so that a collision does not mean a missed
// neighbor. This example sizes a deployment for S = 20 devices, then
// simulates it on the ALOHA channel — with and without the BLE-style
// beacon jitter the paper's conclusion recommends.
//
// Run with: go run ./examples/busynetwork
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}
	eta := 0.05 // 5 % duty-cycle per device
	s := 20     // devices in range of each other

	// Two-device optimum: latency-optimal but channel-hungry.
	naive, err := nd.OptimalSymmetric(p.Omega, p.Alpha, eta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Two-device optimum at η = %.0f%%: worst case %.3f s, channel utilization β = %.3f%%\n",
		eta*100, float64(naive.WorstCase())/1e6, naive.E.B.Beta()*100)
	fmt.Printf("  per-beacon collision probability among S = %d devices: %.1f%% (Eq 12)\n",
		s, nd.CollisionProbability(s, naive.E.B.Beta())*100)

	// Appendix B: pick redundancy and split for a 0.1 % failure target.
	pf := 0.001
	sol, err := nd.SolveRedundancy(p, eta, pf, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAppendix B design for Pf ≤ %.2g%%:\n", pf*100)
	fmt.Printf("  cover every offset %d times (fraction %.2f covered %d times)\n",
		sol.Q, sol.QFrac, sol.Q+1)
	fmt.Printf("  β = %.3f%% (collision prob %.2f%%), γ = %.3f%%\n",
		sol.Beta*100, sol.Pc*100, sol.Gamma*100)
	fmt.Printf("  latency with %d-fold chances: L' = %.3f s (vs %.3f s for two devices)\n",
		sol.Q, sol.Latency/1e6, float64(naive.WorstCase())/1e6)

	// Theorem 5.6: what the channel cap alone costs a pair.
	capped := p.Constrained(eta, sol.Beta)
	fmt.Printf("  pair worst-case at the capped β (Thm 5.6): %.3f s\n", capped/1e6)

	// Build the capped schedule and simulate the room.
	dev, err := nd.OptimalConstrained(p.Omega, p.Alpha, eta, sol.Beta)
	if err != nil {
		log.Fatal(err)
	}
	horizon := 12 * dev.WorstCase()

	fmt.Printf("\nSimulating %d devices on the ALOHA channel (%d trials)…\n", s, 25)
	for _, jitter := range []nd.Ticks{0, dev.E.B.Period / nd.Ticks(dev.E.B.MB()) / 4} {
		res, err := nd.GroupDiscovery(dev.E, s, 25, nd.SimConfig{
			Horizon:    horizon,
			Collisions: true,
			HalfDuplex: true,
			Jitter:     jitter,
			Seed:       2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "no jitter       "
		if jitter > 0 {
			label = fmt.Sprintf("jitter ≤ %-6v", jitter)
		}
		fmt.Printf("  %s: collision rate %.1f%%, pair failure %.2f%%, mean latency %.3f s, p95 %.3f s\n",
			label, res.CollisionRate*100, res.Latency.FailureRate()*100,
			res.Latency.Mean/1e6, float64(res.Latency.P95)/1e6)
	}
	fmt.Println("\nWithout jitter, periodic schedules lock colliding pairs into colliding")
	fmt.Println("forever (Lemma 5.2's repetitiveness); jitter decorrelates the pattern —")
	fmt.Println("the decorrelation direction the paper's conclusion calls out.")
}
