// busynetwork: neighbor discovery in a crowded room.
//
// With S = 20 devices discovering each other simultaneously, beacons
// collide (Equation 12) and the two-device optimum is no longer the right
// design: Theorem 5.6 caps the channel utilization, and Appendix B trades
// latency for redundant coverage. The engine registry holds the three
// operating points — the raw optimum, the optimum with BLE-style jitter,
// and the Appendix B capped design — as declarative scenarios.
//
// Run with: go run ./examples/busynetwork
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	eta := 0.05
	s := 20

	fmt.Printf("S = %d devices at η = %.0f%% each.\n", s, eta*100)
	fmt.Printf("Two-device optimum uses β = %.3f%% of the channel → per-beacon collision\n",
		eta/2*100)
	fmt.Printf("probability %.1f%% (Eq 12). Appendix B instead caps β and buys redundancy.\n\n",
		nd.CollisionProbability(s, eta/2)*100)

	names := []string{"busynetwork-raw", "busynetwork-jitter", "busynetwork-capped"}
	var results []nd.ScenarioResult
	for _, name := range names {
		sc, err := nd.ScenarioPreset(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nd.RunScenario(sc, nd.EngineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	fmt.Print(nd.RenderScenarioTable(results))

	raw, jit, capped := results[0], results[1], results[2]
	fmt.Printf("\nCollision rate: raw %.1f%% → with jitter %.1f%% → capped %.1f%%\n",
		raw.CollisionRate*100, jit.CollisionRate*100, capped.CollisionRate*100)
	fmt.Printf("Pair failure:   raw %.2f%% → with jitter %.2f%% → capped %.2f%%\n",
		raw.FailureRate*100, jit.FailureRate*100, capped.FailureRate*100)

	fmt.Println("\nWithout jitter, periodic schedules lock colliding pairs into colliding")
	fmt.Println("forever (Lemma 5.2's repetitiveness); jitter decorrelates the pattern, and")
	fmt.Println("the Appendix B cap pays a little pair latency for far fewer collisions —")
	fmt.Println("the crowded-network design rule the paper derives.")
}
