// lifetime: from latency targets to battery life — the bounds as a
// deployment planning tool.
//
// The paper's central object is the latency/duty-cycle Pareto front. For a
// product team the question is phrased differently: "we need devices to
// find each other within X seconds; how long will the coin cell last?"
// This example inverts Theorem 5.5 for a real radio profile and prints the
// plan, then sanity-checks one row by building the actual schedule and
// measuring both its latency and its current draw.
//
// Run with: go run ./examples/lifetime
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	radio := nd.NRF52
	omega := nd.Ticks(128) // BLE advertising PDU airtime, ≈128 µs
	fmt.Printf("Radio: %s (TX %.1f mA, RX %.1f mA, sleep %.4f mA → α = %.2f)\n",
		radio.Name, radio.TxCurrent, radio.RxCurrent, radio.SleepCurrent, radio.Alpha())
	fmt.Printf("Battery: CR2032 coin cell, %.0f mAh\n\n", nd.CR2032Capacity)

	targets := []float64{0.5, 1, 2, 5, 10, 30, 60}
	plan, err := nd.LifetimePlan(radio, omega, nd.CR2032Capacity, targets)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %-10s %-22s %-12s %-12s\n",
		"discover in", "η needed", "split (β / γ)", "avg current", "battery life")
	for _, pt := range plan {
		fmt.Printf("%8.1f s     %6.3f%%   %.4f%% / %.4f%%      %8.4f mA %8.0f days\n",
			pt.LatencySeconds, pt.Eta*100, pt.Beta*100, pt.Gamma*100,
			pt.CurrentMA, pt.LifetimeDays)
	}

	// Sanity-check the 2-second row constructively: build the schedule,
	// measure its exact worst case and its current.
	pt := plan[2]
	pair, err := nd.OptimalSymmetric(omega, radio.Alpha(), pt.Eta)
	if err != nil {
		log.Fatal(err)
	}
	ana, err := nd.Analyze(pair.E.B, pair.F.C, nd.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	current := radio.DeviceCurrent(pair.E)
	fmt.Printf("\nConstructive check of the %.0f s row:\n", pt.LatencySeconds)
	fmt.Printf("  built schedule measures %.3f s worst case (target %.1f s)\n",
		float64(ana.WorstLatency)/1e6, pt.LatencySeconds)
	fmt.Printf("  measured current %.4f mA → %.0f days (plan said %.0f)\n",
		current, nd.CR2032Capacity/current/24, pt.LifetimeDays)

	// And the multi-channel reality check: the same energy spent BLE-style
	// across 3 channels.
	cfg := nd.BLEMultichannel(1022500, omega, 1280000, 11250)
	res, err := nd.AnalyzeMultichannel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3-channel BLE low-power preset (adv 1.0225 s, scan 11.25 ms/1.28 s):\n")
	if res.Deterministic {
		fmt.Printf("  deterministic, worst case %.2f s\n", float64(res.WorstLatency)/1e6)
	} else {
		fmt.Printf("  NOT deterministic: %.1f%% of offsets covered — BLE relies on advDelay\n",
			res.CoveredFraction*100)
	}
}
