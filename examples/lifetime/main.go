// lifetime: from latency targets to battery life — the bounds as a
// deployment planning tool.
//
// The paper's central object is the latency/duty-cycle Pareto front. For a
// product team the question is phrased differently: "we need devices to
// find each other within X seconds; how long will the coin cell last?"
// This example inverts Theorem 5.5 for a real radio profile, prints the
// plan, then sanity-checks the 2-second row by running the registry's
// "lifetime" scenario — the constructive schedule at that row's η.
//
// Run with: go run ./examples/lifetime
package main

import (
	"fmt"
	"log"

	"repro/nd"
)

func main() {
	radio := nd.NRF52
	omega := nd.Ticks(128) // BLE advertising PDU airtime, ≈128 µs
	fmt.Printf("Radio: %s (TX %.1f mA, RX %.1f mA, sleep %.4f mA → α = %.2f)\n",
		radio.Name, radio.TxCurrent, radio.RxCurrent, radio.SleepCurrent, radio.Alpha())
	fmt.Printf("Battery: CR2032 coin cell, %.0f mAh\n\n", nd.CR2032Capacity)

	targets := []float64{0.5, 1, 2, 5, 10, 30, 60}
	plan, err := nd.LifetimePlan(radio, omega, nd.CR2032Capacity, targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-10s %-22s %-12s %-12s\n",
		"discover in", "η needed", "split (β / γ)", "avg current", "battery life")
	for _, pt := range plan {
		fmt.Printf("%8.1f s     %6.3f%%   %.4f%% / %.4f%%      %8.4f mA %8.0f days\n",
			pt.LatencySeconds, pt.Eta*100, pt.Beta*100, pt.Gamma*100,
			pt.CurrentMA, pt.LifetimeDays)
	}

	// Constructive check of the 2-second row via the scenario engine:
	// start from the registry's "lifetime" preset and pin its protocol to
	// exactly the plan's row — the radio's real α and the row's η.
	pt := plan[2]
	sc, err := nd.ScenarioPreset("lifetime")
	if err != nil {
		log.Fatal(err)
	}
	sc.Protocol.Alpha = radio.Alpha()
	sc.Protocol.Eta = pt.Eta
	res, err := nd.RunScenario(sc, nd.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nConstructive check of the %.1f s row (α = %.2f, η = %.3f%%):\n",
		pt.LatencySeconds, radio.Alpha(), res.EtaE*100)
	fmt.Printf("  built schedule measures %.3f s worst case (target %.1f s); simulated mean %.3f s, p95 %.3f s\n",
		float64(res.ExactWorst)/1e6, pt.LatencySeconds,
		res.Latency.Mean/1e6, float64(res.Latency.P95)/1e6)

	// And the energy side of the same row: the schedule's measured
	// current draw against what the plan promised.
	pair, err := nd.OptimalSymmetric(omega, radio.Alpha(), pt.Eta)
	if err != nil {
		log.Fatal(err)
	}
	current := radio.DeviceCurrent(pair.E)
	fmt.Printf("  measured current %.4f mA → %.0f days (plan said %.0f)\n\n",
		current, nd.CR2032Capacity/current/24, pt.LifetimeDays)
	fmt.Print(nd.RenderScenarioTable([]nd.ScenarioResult{res}))
}
