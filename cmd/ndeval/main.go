// Command ndeval regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	ndeval                   # run everything
//	ndeval -exp table1       # Table 1
//	ndeval -exp fig6         # Figure 6
//	ndeval -exp fig7         # Figure 7
//	ndeval -exp slotted      # Section 6.1.1 (Eq 18/19 vs Thm 5.5)
//	ndeval -exp appb         # Appendix B worked example
//	ndeval -exp achieve      # bound-achievability certification
//	ndeval -exp mc           # Monte-Carlo Eq 12 validation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/timebase"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: all|table1|fig5|fig6|fig7|slotted|appb|achieve|mc|covmap|assist|ablate")
		omega  = flag.Int64("omega", 36, "packet airtime ω in µs")
		alpha  = flag.Float64("alpha", 1.0, "power ratio α")
		trials = flag.Int("trials", 40, "Monte-Carlo trials for -exp mc")
	)
	flag.Parse()

	p := core.Params{Omega: timebase.Ticks(*omega), Alpha: *alpha}
	if !p.Valid() {
		fmt.Fprintf(os.Stderr, "ndeval: invalid radio parameters\n")
		os.Exit(2)
	}

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndeval: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println()
	}

	run("table1", func() (string, error) {
		r, err := eval.RunTable1(p)
		return r.Render(), err
	})
	run("fig6", func() (string, error) {
		return eval.RunFigure6(p).Render(), nil
	})
	run("fig7", func() (string, error) {
		return eval.RunFigure7(p).Render(), nil
	})
	run("slotted", func() (string, error) {
		return eval.RunSlottedAlpha(p.Omega).Render(), nil
	})
	run("appb", func() (string, error) {
		r, err := eval.RunAppendixB(p)
		return r.Render(), err
	})
	run("achieve", func() (string, error) {
		r, err := eval.RunAchievability(p)
		return r.Render(), err
	})
	run("mc", func() (string, error) {
		r, err := eval.RunCollisionMC(p, *trials)
		return r.Render(), err
	})
	run("fig5", func() (string, error) {
		r, err := eval.RunFigure5(p)
		return r.Render(), err
	})
	run("covmap", func() (string, error) {
		return eval.RenderCoverageMap(p)
	})
	run("assist", func() (string, error) {
		r, err := eval.RunAssistance(p)
		return r.Render(), err
	})
	run("ablate", func() (string, error) {
		r, err := eval.RunAblations(p)
		return r.Render(), err
	})
}
