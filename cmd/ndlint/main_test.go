package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadModule is the end-to-end smoke test: over a fixture module seeded
// with one violation per wired analyzer, the driver must print each
// diagnostic and exit 1.
func TestBadModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "badmod"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"nodeterminism",
		"wall-clock call time.Now",
		"wall-clock call time.Since",
		"global RNG call rand.Intn",
		"intaccum",
		"badmod.accum.mean is float64",
		"maprange",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q\nstdout:\n%s", want, out)
		}
	}
	// Findings name files relative to the fixture module root.
	if !strings.Contains(out, "bad.go:") {
		t.Errorf("stdout should reference bad.go with a root-relative path:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary:\n%s", stderr.String())
	}
}

// TestCleanModule: a compliant module yields no output and exit 0.
func TestCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "cleanmod"), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

// TestMissingConfig: the driver refuses to run without its config — a
// missing ndlint.json must not silently lint nothing.
func TestMissingConfig(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "p.go"), "package tmpmod\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "ndlint.json") {
		t.Errorf("stderr should name the missing config:\n%s", stderr.String())
	}
}

// TestBadPattern: a pattern matching nothing is an operational error, not
// a silent pass.
func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "cleanmod"), "./nosuchdir/..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
