// Package badmod is a deliberately broken module: every seeded violation
// below must surface in cmd/ndlint's output, proving the driver wires the
// suite end to end (load → analyze → print → exit 1).
package badmod

import (
	"fmt"
	"math/rand"
	"time"
)

// accum is named in ndlint.json as a mergeable accumulator, so its float
// field is a finding.
type accum struct {
	count int64
	mean  float64
}

// trial mixes wall-clock reads and the process-global RNG into what the
// config declares a deterministic package.
func trial() int64 {
	start := time.Now()
	n := rand.Intn(100)
	_ = time.Since(start)
	return int64(n)
}

// dump prints map contents in iteration order — nondeterministic output.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
