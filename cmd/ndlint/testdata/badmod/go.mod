module badmod

go 1.21
