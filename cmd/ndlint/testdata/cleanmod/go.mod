module cleanmod

go 1.21
