// Package cleanmod follows the determinism contract everywhere, so ndlint
// must exit 0 with no output over it.
package cleanmod

import (
	"fmt"
	"math/rand"
	"sort"
)

// accum keeps merged state all-integer.
type accum struct {
	count int64
	worst int64
}

// trial draws from an injected source only.
func trial(src rand.Source) int64 {
	rng := rand.New(src)
	return rng.Int63n(100)
}

// dump sorts keys before printing, discharging the map-order hazard.
func dump(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
