// Command ndlint runs the repository's determinism-contract lint suite
// (internal/analyzers) over module packages and exits nonzero on any
// diagnostic. It is the machine check behind the invariants
// docs/ARCHITECTURE.md states in prose.
//
// Usage:
//
//	go run ./cmd/ndlint ./...
//	go run ./cmd/ndlint -config ndlint.json ./internal/engine ./internal/sim
//
// Patterns follow the go tool's shape: a plain package directory relative
// to -dir, or a "dir/..." subtree. With no patterns, ./... is linted.
// The config (scopes and declared exceptions for every pass) defaults to
// ndlint.json at the module root and must exist — a missing config would
// silently lint nothing.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 operational error
// (unloadable package, bad config, bad flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: parse flags, load config and packages,
// run the suite, print findings. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ndlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "path to the suite config (default: ndlint.json at the module root)")
	dir := fs.String("dir", ".", "directory to resolve the module and patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := analysis.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "ndlint: %v\n", err)
		return 2
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintf(stderr, "ndlint: %v\n", err)
		return 2
	}

	cfgPath := *configPath
	if cfgPath == "" {
		cfgPath = filepath.Join(root, "ndlint.json")
	}
	cfg, err := analyzers.LoadConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "ndlint: config: %v\n", err)
		return 2
	}

	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.LoadPatterns(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ndlint: %v\n", err)
		return 2
	}

	findings, err := analysis.Run(analyzers.All(cfg), pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "ndlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, shortenPos(f, root))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ndlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// shortenPos renders a finding with its filename relative to the module
// root, so output is stable across checkouts.
func shortenPos(f analysis.Finding, root string) string {
	if rel, err := filepath.Rel(root, f.Position.Filename); err == nil && filepath.IsLocal(rel) {
		f.Position.Filename = filepath.ToSlash(rel)
	}
	return f.String()
}
