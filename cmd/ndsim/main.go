// Command ndsim analyzes and simulates neighbor-discovery protocols.
//
// It builds a protocol schedule, measures its exact worst-case discovery
// latency with the coverage engine, compares it against the fundamental
// bound, and optionally Monte-Carlos a group of devices over a collision
// channel.
//
// Usage:
//
//	ndsim -proto optimal  -eta 0.02
//	ndsim -proto disco    -p1 37 -p2 43 -slot 5000
//	ndsim -proto diffcode -q 7 -slot 5000
//	ndsim -proto uconnect -p 11 -slot 5000
//	ndsim -proto ble      -preset balanced
//	ndsim -proto optimal  -eta 0.05 -group 10 -trials 50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/timebase"
)

func main() {
	var (
		proto  = flag.String("proto", "optimal", "protocol: optimal|disco|diffcode|uconnect|searchlight|ble")
		omega  = flag.Int64("omega", 36, "packet airtime ω in µs")
		alpha  = flag.Float64("alpha", 1.0, "power ratio α")
		eta    = flag.Float64("eta", 0.02, "duty-cycle (optimal)")
		p1     = flag.Int("p1", 37, "Disco prime 1")
		p2     = flag.Int("p2", 43, "Disco prime 2")
		pp     = flag.Int("p", 11, "U-Connect prime")
		q      = flag.Int("q", 7, "Diffcode order")
		tt     = flag.Int("t", 16, "Searchlight period (slots)")
		slot   = flag.Int64("slot", 5000, "slot length in µs (slotted protocols)")
		preset = flag.String("preset", "balanced", "BLE preset: fast|balanced|lowpower")
		group  = flag.Int("group", 0, "also run a group simulation with this many devices")
		trials = flag.Int("trials", 30, "Monte-Carlo trials for -group")
		jitter = flag.Int64("jitter", 0, "beacon jitter in µs for -group")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	p := core.Params{Omega: timebase.Ticks(*omega), Alpha: *alpha}
	dev, name, bound, err := buildDevice(p, *proto, *eta, *p1, *p2, *pp, *q, *tt,
		timebase.Ticks(*slot), *preset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("Protocol: %s\n", name)
	fmt.Printf("  β = %.5g (channel utilization), γ = %.5g, η = %.5g\n",
		dev.B.Beta(), dev.C.Gamma(), dev.Eta(p.Alpha))

	ana, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndsim: analyze: %v\n", err)
		os.Exit(1)
	}
	if !ana.Deterministic {
		fmt.Printf("  NOT deterministic: %.4g%% of offsets covered\n", ana.CoveredFraction*100)
	} else {
		fmt.Printf("  worst-case latency: %v (mean %.6g s)\n",
			ana.WorstLatency, ana.MeanLatency/float64(timebase.Second))
		fmt.Printf("  minimal covering prefix M = %d beacons; disjoint=%v redundant=%v\n",
			ana.MinimalPrefix, ana.Disjoint, ana.Redundant)
		if bound > 0 {
			fmt.Printf("  fundamental bound at achieved η: %.6g s → optimality ratio %.4g\n",
				bound/float64(timebase.Second), core.OptimalityRatio(float64(ana.WorstLatency), bound))
		}
	}

	if *group > 1 {
		fmt.Printf("\nGroup simulation: S=%d devices, %d trials, collisions on, jitter %d µs\n",
			*group, *trials, *jitter)
		horizon := 20 * dev.B.Period
		if ana.Deterministic && 10*ana.WorstLatency > horizon {
			horizon = 10 * ana.WorstLatency
		}
		res, err := sim.GroupDiscovery(dev, *group, *trials, sim.Config{
			Horizon:    horizon,
			Collisions: true,
			Jitter:     timebase.Ticks(*jitter),
			Seed:       *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndsim: group: %v\n", err)
			os.Exit(1)
		}
		st := res.Latency
		fmt.Printf("  pair latency: mean %.6g s, p95 %v, max %v\n",
			st.Mean/float64(timebase.Second), st.P95, st.Max)
		fmt.Printf("  failure rate within horizon: %.4g%%\n", st.FailureRate()*100)
		fmt.Printf("  packet collision rate: %.4g%% (Eq 12 predicts %.4g%%)\n",
			res.CollisionRate*100, core.CollisionProbability(*group, dev.B.Beta())*100)
	}
}

func buildDevice(p core.Params, proto string, eta float64, p1, p2, pp, q, t int,
	slot timebase.Ticks, preset string) (schedule.Device, string, float64, error) {
	switch proto {
	case "optimal":
		pair, err := optimal.NewSymmetric(p.Omega, p.Alpha, eta)
		if err != nil {
			return schedule.Device{}, "", 0, err
		}
		etaAch := pair.E.Eta(p.Alpha)
		return pair.E, fmt.Sprintf("optimal symmetric (η=%g)", eta), p.Symmetric(etaAch), nil
	case "disco":
		s, err := protocols.NewDisco(p1, p2, slot, p.Omega)
		if err != nil {
			return schedule.Device{}, "", 0, err
		}
		dev, err := s.DeviceFullDuplex()
		return dev, s.Name, p.Symmetric(s.Eta(p.Alpha)), err
	case "diffcode":
		s, err := protocols.NewDiffcode(q, slot, p.Omega)
		if err != nil {
			return schedule.Device{}, "", 0, err
		}
		dev, err := s.DeviceFullDuplex()
		return dev, s.Name, p.Symmetric(s.Eta(p.Alpha)), err
	case "uconnect":
		s, err := protocols.NewUConnect(pp, slot, p.Omega)
		if err != nil {
			return schedule.Device{}, "", 0, err
		}
		dev, err := s.DeviceFullDuplex()
		return dev, s.Name, p.Symmetric(s.Eta(p.Alpha)), err
	case "searchlight":
		s, err := protocols.NewSearchlight(t, true, slot, p.Omega)
		if err != nil {
			return schedule.Device{}, "", 0, err
		}
		dev, err := s.DeviceFullDuplex()
		return dev, s.Name, p.Symmetric(s.Eta(p.Alpha)), err
	case "ble":
		var cfg protocols.PI
		switch preset {
		case "fast":
			cfg = protocols.BLEFastAdv
		case "balanced":
			cfg = protocols.BLEBalanced
		case "lowpower":
			cfg = protocols.BLELowPower
		default:
			return schedule.Device{}, "", 0, fmt.Errorf("unknown BLE preset %q", preset)
		}
		dev, err := cfg.Device()
		return dev, cfg.Name, p.Symmetric(cfg.Eta(p.Alpha)), err
	default:
		return schedule.Device{}, "", 0, fmt.Errorf("unknown protocol %q", proto)
	}
}
