package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSpecBareArray(t *testing.T) {
	blob := []byte(`[{"name": "a", "protocol": {"kind": "optimal", "omega": 36, "eta": 0.05}, "population": 2, "trials": 10}]`)
	scenarios, err := parseSpec("spec.json", blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].Name != "a" {
		t.Fatalf("unexpected scenarios: %+v", scenarios)
	}
}

func TestParseSpecDocument(t *testing.T) {
	blob := []byte(`{"suite": "mine", "scenarios": [{"name": "a", "protocol": {"kind": "optimal", "omega": 36, "eta": 0.05}, "population": 2, "trials": 10}]}`)
	scenarios, err := parseSpec("spec.json", blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].Name != "a" {
		t.Fatalf("unexpected scenarios: %+v", scenarios)
	}
}

// A typo'd top-level key used to fall through the array parse, match the
// document shape with zero known fields, and run as an empty document.
func TestParseSpecRejectsTypoedKey(t *testing.T) {
	blob := []byte(`{"scenarioz": [{"name": "a"}]}`)
	_, err := parseSpec("spec.json", blob)
	if err == nil {
		t.Fatal("typo'd key parsed as an empty document")
	}
	if !strings.Contains(err.Error(), "scenarioz") {
		t.Fatalf("error does not name the unknown key: %v", err)
	}
}

func TestParseSpecRejectsTypoedScenarioField(t *testing.T) {
	blob := []byte(`[{"name": "a", "trails": 10}]`)
	_, err := parseSpec("spec.json", blob)
	if err == nil {
		t.Fatal("typo'd scenario field accepted")
	}
	if !strings.Contains(err.Error(), "trails") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestParseSpecRejectsEmpty(t *testing.T) {
	for _, blob := range []string{`[]`, `{"scenarios": []}`, `{}`} {
		if _, err := parseSpec("spec.json", []byte(blob)); err == nil {
			t.Errorf("%s accepted as a runnable spec", blob)
		}
	}
}

// When neither shape parses, the error must carry both parse failures —
// the array error used to be swallowed by the fallback's unhelpful
// type-mismatch message.
func TestParseSpecReportsBothErrors(t *testing.T) {
	blob := []byte(`[{"name": "a", "trials": "ten"}]`)
	_, err := parseSpec("spec.json", blob)
	if err == nil {
		t.Fatal("malformed spec accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "not a scenario array") || !strings.Contains(msg, "document") {
		t.Fatalf("error does not report both parse failures: %v", err)
	}
	// The root cause — the string in an integer field — must be visible.
	if !strings.Contains(msg, "trials") && !strings.Contains(msg, "string") {
		t.Fatalf("error hides the underlying cause: %v", err)
	}
}

// -adaptive resolves registry presets first, then falls back to a JSON
// spec file; unknown names must surface the preset error (which lists the
// valid names), and typo'd spec fields must be rejected.
func TestResolveAdaptive(t *testing.T) {
	if _, err := resolveAdaptive("adaptive-eta"); err != nil {
		t.Fatalf("preset lookup failed: %v", err)
	}
	if _, err := resolveAdaptive("no-such-adaptive"); err == nil || !strings.Contains(err.Error(), "unknown adaptive sweep") {
		t.Fatalf("expected unknown-preset error, got %v", err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "search.json")
	blob := `{
		"name": "file-search",
		"base": {"protocol": {"kind": "optimal", "omega": 36, "alpha": 1}, "population": 2, "trials": 8, "seed": 1},
		"axes": [{"field": "protocol.eta", "values": [0.01, 0.05]}],
		"objective": "bound_ratio", "goal": "max"
	}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	ap, err := resolveAdaptive(path)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Name != "file-search" || ap.Objective != "bound_ratio" {
		t.Fatalf("unexpected spec from file: %+v", ap)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "objectivez": "bound_ratio"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveAdaptive(bad); err == nil || !strings.Contains(err.Error(), "objectivez") {
		t.Fatalf("typo'd field accepted: %v", err)
	}
}

// Sweep spec files share the strict resolver: a typo'd key must error,
// not silently vanish.
func TestResolveSweepRejectsTypoedField(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(`{"name": "x", "axez": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveSweep(path); err == nil || !strings.Contains(err.Error(), "axez") {
		t.Fatalf("typo'd sweep field accepted: %v", err)
	}
}

// Trailing content after the first JSON value must not be silently
// dropped — a decoder stops at the end of one value.
func TestParseSpecRejectsTrailingData(t *testing.T) {
	blob := []byte(`[{"name": "a", "protocol": {"kind": "optimal", "omega": 36, "eta": 0.05}, "population": 2, "trials": 10}] {"scenarios": []}`)
	if _, err := parseSpec("spec.json", blob); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data accepted: %v", err)
	}
}
