package main

import (
	"strings"
	"testing"
)

func TestParseSpecBareArray(t *testing.T) {
	blob := []byte(`[{"name": "a", "protocol": {"kind": "optimal", "omega": 36, "eta": 0.05}, "population": 2, "trials": 10}]`)
	scenarios, err := parseSpec("spec.json", blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].Name != "a" {
		t.Fatalf("unexpected scenarios: %+v", scenarios)
	}
}

func TestParseSpecDocument(t *testing.T) {
	blob := []byte(`{"suite": "mine", "scenarios": [{"name": "a", "protocol": {"kind": "optimal", "omega": 36, "eta": 0.05}, "population": 2, "trials": 10}]}`)
	scenarios, err := parseSpec("spec.json", blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].Name != "a" {
		t.Fatalf("unexpected scenarios: %+v", scenarios)
	}
}

// A typo'd top-level key used to fall through the array parse, match the
// document shape with zero known fields, and run as an empty document.
func TestParseSpecRejectsTypoedKey(t *testing.T) {
	blob := []byte(`{"scenarioz": [{"name": "a"}]}`)
	_, err := parseSpec("spec.json", blob)
	if err == nil {
		t.Fatal("typo'd key parsed as an empty document")
	}
	if !strings.Contains(err.Error(), "scenarioz") {
		t.Fatalf("error does not name the unknown key: %v", err)
	}
}

func TestParseSpecRejectsTypoedScenarioField(t *testing.T) {
	blob := []byte(`[{"name": "a", "trails": 10}]`)
	_, err := parseSpec("spec.json", blob)
	if err == nil {
		t.Fatal("typo'd scenario field accepted")
	}
	if !strings.Contains(err.Error(), "trails") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestParseSpecRejectsEmpty(t *testing.T) {
	for _, blob := range []string{`[]`, `{"scenarios": []}`, `{}`} {
		if _, err := parseSpec("spec.json", []byte(blob)); err == nil {
			t.Errorf("%s accepted as a runnable spec", blob)
		}
	}
}

// When neither shape parses, the error must carry both parse failures —
// the array error used to be swallowed by the fallback's unhelpful
// type-mismatch message.
func TestParseSpecReportsBothErrors(t *testing.T) {
	blob := []byte(`[{"name": "a", "trials": "ten"}]`)
	_, err := parseSpec("spec.json", blob)
	if err == nil {
		t.Fatal("malformed spec accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "not a scenario array") || !strings.Contains(msg, "document") {
		t.Fatalf("error does not report both parse failures: %v", err)
	}
	// The root cause — the string in an integer field — must be visible.
	if !strings.Contains(msg, "trials") && !strings.Contains(msg, "string") {
		t.Fatalf("error hides the underlying cause: %v", err)
	}
}

// Trailing content after the first JSON value must not be silently
// dropped — a decoder stops at the end of one value.
func TestParseSpecRejectsTrailingData(t *testing.T) {
	blob := []byte(`[{"name": "a", "protocol": {"kind": "optimal", "omega": 36, "eta": 0.05}, "population": 2, "trials": 10}] {"scenarios": []}`)
	if _, err := parseSpec("spec.json", blob); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data accepted: %v", err)
	}
}
