// Command ndscen is the batch experiment runner: it executes declarative
// neighbor-discovery scenarios — registry presets, named suites, or specs
// loaded from a JSON file — sharding Monte-Carlo trials across a worker
// pool, and reports aggregate results as a text table, optional ASCII CDF
// plot, and deterministic JSON.
//
// Results are bit-identical for any -workers value: every trial runs on
// its own RNG stream derived from the scenario's identity hash and the
// trial index, and aggregation happens in trial order.
//
// Usage:
//
//	ndscen -list
//	ndscen -suite paper-fig7 -workers 8 -out results.json
//	ndscen -scenario quickstart,sensornet -plot
//	ndscen -spec myscenarios.json -trials 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
)

func main() {
	var (
		suite    = flag.String("suite", "", "run a named suite (see -list)")
		scenario = flag.String("scenario", "", "run comma-separated presets (see -list)")
		spec     = flag.String("spec", "", "run scenarios from a JSON file ([]Scenario or {\"scenarios\": [...]})")
		list     = flag.Bool("list", false, "list presets and suites, then exit")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		trials   = flag.Int("trials", 0, "override every scenario's trial count")
		out      = flag.String("out", "", "write JSON results to this file (\"-\" = stdout)")
		plot     = flag.Bool("plot", false, "render the latency CDFs as an ASCII plot")
		quiet    = flag.Bool("quiet", false, "suppress the text table")
	)
	flag.Parse()

	if *list {
		fmt.Println("Presets:")
		for _, n := range engine.Presets() {
			sc, _ := engine.Preset(n)
			fmt.Printf("  %-20s %s\n", n, sc.Description)
		}
		fmt.Println("\nSuites:")
		for _, n := range engine.Suites() {
			scenarios, _ := engine.Suite(n)
			fmt.Printf("  %-20s %d scenarios\n", n, len(scenarios))
		}
		return
	}

	scenarios, label, err := collect(*suite, *scenario, *spec)
	if err != nil {
		fatal(err)
	}
	if len(scenarios) == 0 {
		fatal(fmt.Errorf("nothing to run: pass -suite, -scenario or -spec (or -list)"))
	}

	opt := engine.Options{Workers: *workers, Trials: *trials}
	start := time.Now()
	aggs, err := engine.RunSuite(scenarios, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if !*quiet {
		fmt.Print(engine.RenderTable(aggs))
	}
	if *plot {
		fmt.Println()
		fmt.Print(engine.RenderCDF(aggs))
	}
	fmt.Fprintf(os.Stderr, "ndscen: %d scenarios, %d trials in %v\n",
		len(aggs), totalTrials(aggs), elapsed.Round(time.Millisecond))

	if *out != "" {
		res := engine.SuiteResult{Suite: label, Scenarios: aggs}
		if *out == "-" {
			if err := engine.WriteJSON(os.Stdout, res); err != nil {
				fatal(err)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := engine.WriteJSON(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ndscen: wrote %s\n", *out)
	}
}

// collect resolves the three scenario sources; exactly one may be used.
func collect(suite, scenario, spec string) ([]engine.Scenario, string, error) {
	set := 0
	for _, s := range []string{suite, scenario, spec} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, "", fmt.Errorf("pass only one of -suite, -scenario, -spec")
	}
	switch {
	case suite != "":
		scenarios, err := engine.Suite(suite)
		return scenarios, suite, err
	case scenario != "":
		var out []engine.Scenario
		for _, name := range strings.Split(scenario, ",") {
			sc, err := engine.Preset(strings.TrimSpace(name))
			if err != nil {
				return nil, "", err
			}
			out = append(out, sc)
		}
		return out, scenario, nil
	case spec != "":
		blob, err := os.ReadFile(spec)
		if err != nil {
			return nil, "", err
		}
		// Accept either a bare array or a {"scenarios": [...]} document
		// (the shape ndscen itself emits, minus the results).
		var arr []engine.Scenario
		if err := json.Unmarshal(blob, &arr); err == nil {
			return arr, spec, nil
		}
		var doc struct {
			Scenarios []engine.Scenario `json:"scenarios"`
		}
		if err := json.Unmarshal(blob, &doc); err != nil {
			return nil, "", fmt.Errorf("parsing %s: %w", spec, err)
		}
		return doc.Scenarios, spec, nil
	}
	return nil, "", nil
}

func totalTrials(aggs []engine.Aggregate) int {
	n := 0
	for _, a := range aggs {
		n += a.Trials
	}
	return n
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ndscen: %v\n", err)
	os.Exit(1)
}
