// Command ndscen is the batch experiment runner: it executes declarative
// neighbor-discovery scenarios — registry presets, named suites, parameter
// sweeps, or specs loaded from a JSON file — sharding Monte-Carlo trials
// across one shared worker pool, and reports aggregate results as a text
// table, optional ASCII CDF plot, and deterministic JSON. Multi-channel
// scenarios additionally get a per-channel table: discovery shares, the
// multi-node kinds' per-channel transmission and collision columns
// (tx/coll%), and the exact branch-entry analysis.
//
// Results are bit-identical for any -workers value: every trial runs on
// its own RNG stream derived from the scenario's identity hash and the
// trial index, and aggregation is either trial-ordered (exact) or built
// from order-insensitive integer accumulators (streaming).
//
// Adaptive sweeps (-adaptive) search the parameter space coarse-to-fine
// instead of on a fixed grid: a coarse pass, then refinement rounds that
// bracket the best objective value seen so far, reported as a
// refinement-trace table.
//
// Usage:
//
//	ndscen -list
//	ndscen -suite paper-fig7 -workers 8 -out results.json
//	ndscen -scenario quickstart,sensornet -plot
//	ndscen -sweep sweep-eta -out eta.json
//	ndscen -sweep mysweep.json -stream on
//	ndscen -adaptive adaptive-eta -out eta-refined.json
//	ndscen -spec myscenarios.json -trials 100
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
)

func main() {
	var (
		suite    = flag.String("suite", "", "run a named suite (see -list)")
		scenario = flag.String("scenario", "", "run comma-separated presets (see -list)")
		spec     = flag.String("spec", "", "run scenarios from a JSON file ([]Scenario or {\"scenarios\": [...]})")
		sweep    = flag.String("sweep", "", "run a named sweep preset or a SweepSpec JSON file (see -list)")
		adaptive = flag.String("adaptive", "", "run a named adaptive sweep preset or an AdaptiveSpec JSON file (see -list)")
		list     = flag.Bool("list", false, "list presets, suites and sweeps, then exit")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		trials   = flag.Int("trials", 0, "override every scenario's trial count")
		stream   = flag.String("stream", "auto", "streaming aggregator: auto|on|off")
		out      = flag.String("out", "", "write JSON results to this file (\"-\" = stdout)")
		plot     = flag.Bool("plot", false, "render the latency CDFs as an ASCII plot")
		quiet    = flag.Bool("quiet", false, "suppress the text table")
	)
	flag.Parse()

	if *list {
		fmt.Println("Presets:")
		for _, n := range engine.Presets() {
			sc, _ := engine.Preset(n)
			fmt.Printf("  %-24s %s\n", n, sc.Description)
		}
		fmt.Println("\nSuites:")
		for _, n := range engine.Suites() {
			scenarios, _ := engine.Suite(n)
			fmt.Printf("  %-24s %d scenarios\n", n, len(scenarios))
		}
		fmt.Println("\nSweeps:")
		for _, n := range engine.SweepPresets() {
			sp, _ := engine.SweepPreset(n)
			fmt.Printf("  %-24s %d points — %s\n", n, sp.Points(), sp.Description)
		}
		fmt.Println("\nAdaptive sweeps:")
		for _, n := range engine.AdaptivePresets() {
			ap, _ := engine.AdaptivePreset(n)
			fmt.Printf("  %-24s %s %s — %s\n", n, ap.Goal, ap.Objective, ap.Description)
		}
		return
	}

	mode, err := streamMode(*stream)
	if err != nil {
		fatal(err)
	}
	opt := engine.Options{Workers: *workers, Trials: *trials, Stream: mode}

	if *sweep != "" || *adaptive != "" {
		if *suite != "" || *scenario != "" || *spec != "" || (*sweep != "" && *adaptive != "") {
			fatal(fmt.Errorf("pass only one of -suite, -scenario, -spec, -sweep, -adaptive"))
		}
		if *adaptive != "" {
			runAdaptive(*adaptive, opt, *out, *quiet)
		} else {
			runSweep(*sweep, opt, *out, *plot, *quiet)
		}
		return
	}

	scenarios, label, err := collect(*suite, *scenario, *spec)
	if err != nil {
		fatal(err)
	}
	if len(scenarios) == 0 {
		fatal(fmt.Errorf("nothing to run: pass -suite, -scenario, -spec, -sweep or -adaptive (or -list)"))
	}

	start := time.Now()
	aggs, err := engine.RunSuite(scenarios, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if !*quiet {
		fmt.Print(engine.RenderTable(aggs))
		if ch := engine.RenderChannels(aggs); ch != "" {
			fmt.Println()
			fmt.Print(ch)
		}
	}
	if *plot {
		fmt.Println()
		fmt.Print(engine.RenderCDF(aggs))
	}
	fmt.Fprintf(os.Stderr, "ndscen: %d scenarios, %d trials in %v\n",
		len(aggs), totalTrials(aggs), elapsed.Round(time.Millisecond))

	writeResult(*out, engine.SuiteResult{Suite: label, Scenarios: aggs})
}

// runSweep resolves (registry name, else SweepSpec JSON file), expands and
// runs the sweep, and reports one row per grid point.
func runSweep(name string, opt engine.Options, out string, plot, quiet bool) {
	sp, err := resolveSweep(name)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	aggs, err := engine.RunSweep(sp, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if !quiet {
		fmt.Print(engine.RenderSweepTable(sp, aggs))
		if ch := engine.RenderChannels(aggs); ch != "" {
			fmt.Println()
			fmt.Print(ch)
		}
	}
	if plot {
		fmt.Println()
		fmt.Print(engine.RenderCDF(aggs))
	}
	fmt.Fprintf(os.Stderr, "ndscen: sweep %s: %d points, %d trials in %v\n",
		sp.Name, len(aggs), totalTrials(aggs), elapsed.Round(time.Millisecond))

	writeResult(out, engine.SuiteResult{Suite: sp.Name, Scenarios: aggs})
}

// runAdaptive resolves (registry name, else AdaptiveSpec JSON file), runs
// the coarse-to-fine search, and reports the refinement trace.
func runAdaptive(name string, opt engine.Options, out string, quiet bool) {
	ap, err := resolveAdaptive(name)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := engine.RunAdaptive(ap, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if !quiet {
		fmt.Print(engine.RenderAdaptiveTable(res))
	}
	fmt.Fprintf(os.Stderr, "ndscen: adaptive %s: %d evaluations over %d rounds in %v\n",
		res.Name, res.Evaluations, len(res.Rounds), elapsed.Round(time.Millisecond))

	writeOut(out, func(w io.Writer) error { return engine.WriteAdaptiveJSON(w, res) })
}

func resolveAdaptive(name string) (engine.AdaptiveSpec, error) {
	return resolveSpecArg(name, "adaptive sweep spec", engine.AdaptivePreset)
}

func resolveSweep(name string) (engine.SweepSpec, error) {
	return resolveSpecArg(name, "sweep spec", engine.SweepPreset)
}

// resolveSpecArg resolves a -sweep/-adaptive argument: a registry preset
// name first, else a strict JSON spec file (unknown keys rejected, like
// -spec files — a typo'd field must not silently vanish).
func resolveSpecArg[T any](name, what string, preset func(string) (T, error)) (T, error) {
	var zero T
	sp, err := preset(name)
	if err == nil {
		return sp, nil
	}
	blob, ferr := os.ReadFile(name)
	if ferr != nil {
		if os.IsNotExist(ferr) {
			// Not a preset and no such file: the preset error (which
			// lists the valid names) is the useful one.
			return zero, err
		}
		return zero, fmt.Errorf("%v; reading it as a %s file also failed: %w", err, what, ferr)
	}
	var fromFile T
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if jerr := dec.Decode(&fromFile); jerr != nil {
		return zero, fmt.Errorf("parsing %s %s: %w", what, name, jerr)
	}
	return fromFile, nil
}

func streamMode(s string) (engine.StreamMode, error) {
	switch s {
	case "", "auto":
		return engine.StreamAuto, nil
	case "on":
		return engine.StreamOn, nil
	case "off":
		return engine.StreamOff, nil
	default:
		return engine.StreamAuto, fmt.Errorf("unknown -stream mode %q (want auto, on or off)", s)
	}
}

func writeResult(out string, res engine.SuiteResult) {
	writeOut(out, func(w io.Writer) error { return engine.WriteJSON(w, res) })
}

// writeOut routes a JSON document to -out: nowhere, stdout ("-"), or a file.
func writeOut(out string, write func(io.Writer) error) {
	if out == "" {
		return
	}
	if out == "-" {
		if err := write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ndscen: wrote %s\n", out)
}

// collect resolves the three scenario-list sources; exactly one may be used.
func collect(suite, scenario, spec string) ([]engine.Scenario, string, error) {
	set := 0
	for _, s := range []string{suite, scenario, spec} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, "", fmt.Errorf("pass only one of -suite, -scenario, -spec, -sweep, -adaptive")
	}
	switch {
	case suite != "":
		scenarios, err := engine.Suite(suite)
		return scenarios, suite, err
	case scenario != "":
		var out []engine.Scenario
		for _, name := range strings.Split(scenario, ",") {
			sc, err := engine.Preset(strings.TrimSpace(name))
			if err != nil {
				return nil, "", err
			}
			out = append(out, sc)
		}
		return out, scenario, nil
	case spec != "":
		blob, err := os.ReadFile(spec)
		if err != nil {
			return nil, "", err
		}
		scenarios, err := parseSpec(spec, blob)
		return scenarios, spec, err
	}
	return nil, "", nil
}

// parseSpec accepts either a bare scenario array or a {"scenarios": [...]}
// document (a "suite" key is tolerated, matching the shape ndscen itself
// emits). Unknown keys are rejected — a typo'd "scenarioz" must not parse
// as an empty document — empty documents are errors, and when neither
// shape parses, both errors are reported (so an array with a broken
// element isn't masked by the unhelpful "cannot unmarshal array into
// object" of the fallback).
func parseSpec(path string, blob []byte) ([]engine.Scenario, error) {
	strict := func(v any) error {
		dec := json.NewDecoder(bytes.NewReader(blob))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return err
		}
		// A decoder stops after one value; trailing content (a bad
		// concatenation, a merge artifact) must not be silently dropped.
		if _, err := dec.Token(); err != io.EOF {
			return fmt.Errorf("trailing data after the first JSON value")
		}
		return nil
	}
	var arr []engine.Scenario
	arrErr := strict(&arr)
	if arrErr == nil {
		if len(arr) == 0 {
			return nil, fmt.Errorf("parsing %s: empty scenario list", path)
		}
		return arr, nil
	}
	var doc struct {
		Suite     string            `json:"suite"`
		Scenarios []engine.Scenario `json:"scenarios"`
	}
	if docErr := strict(&doc); docErr != nil {
		return nil, fmt.Errorf("parsing %s: not a scenario array (%v) and not a {\"scenarios\": [...]} document (%v)", path, arrErr, docErr)
	}
	if len(doc.Scenarios) == 0 {
		return nil, fmt.Errorf("parsing %s: document has no scenarios (is the \"scenarios\" key present and non-empty?)", path)
	}
	return doc.Scenarios, nil
}

func totalTrials(aggs []engine.Aggregate) int {
	n := 0
	for _, a := range aggs {
		n += a.Trials
	}
	return n
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ndscen: %v\n", err)
	os.Exit(1)
}
