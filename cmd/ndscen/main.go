// Command ndscen is the batch experiment runner: it executes declarative
// neighbor-discovery scenarios — registry presets, named suites, parameter
// sweeps, or specs loaded from a JSON file — sharding Monte-Carlo trials
// across one shared worker pool, and reports aggregate results as a text
// table, optional ASCII CDF plot, and deterministic JSON. Multi-channel
// scenarios additionally get a per-channel table: discovery shares, the
// multi-node kinds' per-channel transmission and collision columns
// (tx/coll%), and the exact branch-entry analysis.
//
// Results are bit-identical for any -workers value: every trial runs on
// its own RNG stream derived from the scenario's identity hash and the
// trial index, and aggregation is either trial-ordered (exact) or built
// from order-insensitive integer accumulators (streaming).
//
// -exact (or "exact": true in a spec) answers scenarios from the exact
// schedule analysis instead of running any trials: deterministic
// quiet-channel pair questions return the analysis's worst/mean latency and
// bound ratio directly, flagged "exact_mode" in the JSON; stochastic
// scenarios (crowds, churn, channel models, lossy schedules) are rejected
// with an explanation rather than silently approximated.
//
// Adaptive sweeps (-adaptive) search the parameter space coarse-to-fine
// instead of on a fixed grid: a coarse pass, then refinement rounds that
// bracket the best objective value seen so far, reported as a
// refinement-trace table.
//
// Every run records a RunMetrics document — wall time, trials/sec, worker
// utilization, build-cache traffic, aggregation paths — rendered as a
// summary block after the tables and carried in the -out JSON under
// "runtime" (outside the determinism contract: the deterministic content
// is still byte-identical across -workers values). -progress streams a
// live ticker to stderr, and -cpuprofile/-memprofile/-trace capture
// standard Go profiles of the run.
//
// Sharded execution (-shard k/n -snapshot f.json) runs only trial-range
// shard k of n and writes the run's accumulator state as a versioned
// ndshard/1 snapshot instead of results; -merge a.json b.json ... merges a
// complete shard set into the final document, byte-identical (after
// -strip) to the unsharded run. Adaptive searches shard round by round:
// each merge either finishes the search or writes a continuation snapshot
// (-snapshot) that the next round's shards consume via -resume. -journal
// dir makes suite and sweep runs crash-resumable: every completed point's
// snapshot is persisted, and re-running the same job re-executes only the
// missing points.
//
// Usage:
//
//	ndscen -list
//	ndscen -suite paper-fig7 -workers 8 -out results.json
//	ndscen -scenario quickstart,sensornet -plot
//	ndscen -sweep sweep-eta -exact -out eta-exact.json
//	ndscen -sweep sweep-eta -out eta.json
//	ndscen -sweep mysweep.json -stream on
//	ndscen -adaptive adaptive-eta -out eta-refined.json
//	ndscen -spec myscenarios.json -trials 100
//	ndscen -sweep sweep-density -progress -cpuprofile cpu.out
//	ndscen -sweep sweep-density -shard 1/3 -snapshot shard1.json
//	ndscen -merge -strip -out merged.json shard1.json shard2.json shard3.json
//	ndscen -adaptive adaptive-eta -shard 2/3 -resume cont.json -snapshot shard2.json
//	ndscen -sweep sweep-density -journal /tmp/density-job -out density.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	var (
		suite    = flag.String("suite", "", "run a named suite (see -list)")
		scenario = flag.String("scenario", "", "run comma-separated presets (see -list)")
		spec     = flag.String("spec", "", "run scenarios from a JSON file ([]Scenario or {\"scenarios\": [...]})")
		sweep    = flag.String("sweep", "", "run a named sweep preset or a SweepSpec JSON file (see -list)")
		adaptive = flag.String("adaptive", "", "run a named adaptive sweep preset or an AdaptiveSpec JSON file (see -list)")
		list     = flag.Bool("list", false, "list presets, suites and sweeps, then exit")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		trials   = flag.Int("trials", 0, "override every scenario's trial count")
		exact    = flag.Bool("exact", false, "answer every scenario from the exact schedule analysis (no trials; deterministic quiet-channel pairs only)")
		stream   = flag.String("stream", "auto", "streaming aggregator: auto|on|off")
		out      = flag.String("out", "", "write JSON results to this file (\"-\" = stdout)")
		plot     = flag.Bool("plot", false, "render the latency CDFs as an ASCII plot")
		quiet    = flag.Bool("quiet", false, "suppress the text table and metrics summary")
		progress = flag.Bool("progress", false, "stream a progress ticker to stderr while trials run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut = flag.String("trace", "", "write a runtime execution trace to this file")
		shard    = flag.String("shard", "", "run only trial-range shard k/n and write an ndshard/1 snapshot (needs -snapshot)")
		snapshot = flag.String("snapshot", "", "snapshot file: the -shard output, or the continuation an adaptive -merge writes")
		merge    = flag.Bool("merge", false, "merge the snapshot files given as arguments into the final document")
		resume   = flag.String("resume", "", "adaptive continuation snapshot from the previous round's -merge (with -shard -adaptive)")
		journal  = flag.String("journal", "", "journal directory: persist per-point snapshots and resume interrupted runs")
		strip    = flag.Bool("strip", false, "strip runtime (observability) sections from the -out document")
	)
	flag.Parse()

	if *list {
		fmt.Println("Presets:")
		for _, n := range engine.Presets() {
			sc, _ := engine.Preset(n)
			fmt.Printf("  %-24s %s\n", n, sc.Description)
		}
		fmt.Println("\nSuites:")
		for _, n := range engine.Suites() {
			scenarios, _ := engine.Suite(n)
			fmt.Printf("  %-24s %d scenarios\n", n, len(scenarios))
		}
		fmt.Println("\nSweeps:")
		for _, n := range engine.SweepPresets() {
			sp, _ := engine.SweepPreset(n)
			fmt.Printf("  %-24s %d points — %s\n", n, sp.Points(), sp.Description)
		}
		fmt.Println("\nAdaptive sweeps:")
		for _, n := range engine.AdaptivePresets() {
			ap, _ := engine.AdaptivePreset(n)
			fmt.Printf("  %-24s %s %s — %s\n", n, ap.Goal, ap.Objective, ap.Description)
		}
		return
	}

	mode, err := streamMode(*stream)
	if err != nil {
		fatal(err)
	}
	stopProfiles := startProfiles(*cpuProf, *memProf, *traceOut)
	defer stopProfiles()

	if *merge {
		if *suite != "" || *scenario != "" || *spec != "" || *sweep != "" || *adaptive != "" || *shard != "" || *journal != "" {
			fatal(fmt.Errorf("-merge takes snapshot files as arguments and combines only with -out, -snapshot, -strip, -quiet"))
		}
		runMerge(flag.Args(), *out, *snapshot, *strip, *quiet)
		return
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q (snapshot files go with -merge)", flag.Args()))
	}
	var shardSpec engine.ShardSpec
	if *shard != "" {
		shardSpec, err = engine.ParseShard(*shard)
		if err != nil {
			fatal(err)
		}
		if *snapshot == "" {
			fatal(fmt.Errorf("-shard needs -snapshot to write the shard's accumulator state"))
		}
		if *journal != "" {
			fatal(fmt.Errorf("-shard and -journal are mutually exclusive (shards merge, journals resume)"))
		}
	}
	if *resume != "" && (*shard == "" || *adaptive == "") {
		fatal(fmt.Errorf("-resume continues an adaptive shard round: it needs -shard and -adaptive"))
	}

	var metrics obs.RunMetrics
	opt := engine.Options{
		Workers: *workers, Trials: *trials, Exact: *exact, Stream: mode,
		Metrics: &metrics,
	}
	if *progress {
		opt.Progress = progressPrinter()
	}

	if *sweep != "" || *adaptive != "" {
		if *suite != "" || *scenario != "" || *spec != "" || (*sweep != "" && *adaptive != "") {
			fatal(fmt.Errorf("pass only one of -suite, -scenario, -spec, -sweep, -adaptive"))
		}
		if *adaptive != "" {
			if *journal != "" {
				fatal(fmt.Errorf("-journal supports -suite/-scenario/-spec/-sweep runs; adaptive searches shard round by round instead"))
			}
			if *shard != "" {
				runAdaptiveShard(*adaptive, shardSpec, *resume, opt, *snapshot, *out, *strip, *quiet)
			} else {
				runAdaptive(*adaptive, opt, *out, *quiet, *strip)
			}
		} else if *shard != "" {
			runSweepShard(*sweep, shardSpec, opt, *snapshot)
		} else {
			runSweep(*sweep, opt, *out, *plot, *quiet, *strip, *journal)
		}
		return
	}

	scenarios, label, err := collect(*suite, *scenario, *spec)
	if err != nil {
		fatal(err)
	}
	if len(scenarios) == 0 {
		fatal(fmt.Errorf("nothing to run: pass -suite, -scenario, -spec, -sweep or -adaptive (or -list)"))
	}

	if *shard != "" {
		snap, err := engine.RunScenariosShard(label, scenarios, shardSpec, opt)
		if err != nil {
			fatal(err)
		}
		exitLine(fmt.Sprintf("shard %s of %d scenarios", shardSpec, len(scenarios)), metrics)
		writeShardSnapshot(*snapshot, snap)
		return
	}

	var aggs []engine.Aggregate
	if *journal != "" {
		aggs, err = engine.RunJournaled(label, scenarios, opt, *journal)
	} else {
		aggs, err = engine.RunSuite(scenarios, opt)
	}
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Print(engine.RenderTable(aggs))
		if ch := engine.RenderChannels(aggs); ch != "" {
			fmt.Println()
			fmt.Print(ch)
		}
	}
	if *plot {
		fmt.Println()
		fmt.Print(engine.RenderCDF(aggs))
	}
	summarize(metrics, *quiet)
	exitLine(fmt.Sprintf("%d scenarios", len(aggs)), metrics)

	res := engine.SuiteResult{Suite: label, Scenarios: aggs, Runtime: &metrics}
	if *strip {
		res.StripRuntime()
	}
	writeResult(*out, res)
}

// runMerge reads a complete shard-snapshot set and merges it: suite and
// sweep sets produce the final document; adaptive sets either finish the
// search or write the next round's continuation snapshot.
func runMerge(files []string, out, snapshot string, strip, quiet bool) {
	if len(files) == 0 {
		fatal(fmt.Errorf("-merge needs at least one snapshot file argument"))
	}
	snaps := make([]engine.Snapshot, len(files))
	for i, f := range files {
		s, err := engine.ReadSnapshotFile(f)
		if err != nil {
			fatal(err)
		}
		snaps[i] = s
	}
	if snaps[0].Kind == engine.SnapshotAdaptive {
		res, cont, err := engine.MergeAdaptiveSnapshots(snaps)
		if err != nil {
			fatal(err)
		}
		if cont != nil {
			if snapshot == "" {
				fatal(fmt.Errorf("adaptive search %q needs another shard round: pass -snapshot to write the continuation", cont.Label))
			}
			if err := engine.WriteSnapshotFile(snapshot, *cont); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ndscen: adaptive %q needs another shard round (%d evaluations pooled); wrote continuation %s\n",
				cont.Label, len(cont.Evaluations), snapshot)
			return
		}
		if !quiet {
			fmt.Print(engine.RenderAdaptiveTable(*res))
		}
		fmt.Fprintf(os.Stderr, "ndscen: merged %d shards: adaptive %s, %d evaluations over %d rounds\n",
			len(files), res.Name, res.Evaluations, len(res.Rounds))
		if strip {
			res.StripRuntime()
		}
		writeOut(out, func(w io.Writer) error { return engine.WriteAdaptiveJSON(w, *res) })
		return
	}
	res, err := engine.MergeSnapshots(snaps)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Print(engine.RenderTable(res.Scenarios))
		if ch := engine.RenderChannels(res.Scenarios); ch != "" {
			fmt.Println()
			fmt.Print(ch)
		}
	}
	fmt.Fprintf(os.Stderr, "ndscen: merged %d shards: %d scenarios\n", len(files), len(res.Scenarios))
	if strip {
		res.StripRuntime()
	}
	writeResult(out, res)
}

// writeShardSnapshot persists a shard's snapshot — the only output a
// sharded run produces.
func writeShardSnapshot(path string, snap engine.Snapshot) {
	if err := engine.WriteSnapshotFile(path, snap); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ndscen: wrote shard %s snapshot %s (%d points)\n", snap.Shard, path, len(snap.Points))
}

// runSweepShard runs one trial-range shard of a sweep and writes its
// snapshot.
func runSweepShard(name string, shard engine.ShardSpec, opt engine.Options, snapshot string) {
	sp, err := resolveSweep(name)
	if err != nil {
		fatal(err)
	}
	snap, err := engine.RunSweepShard(sp, shard, opt)
	if err != nil {
		fatal(err)
	}
	exitLine(fmt.Sprintf("sweep %s shard %s", sp.Name, shard), *opt.Metrics)
	writeShardSnapshot(snapshot, snap)
}

// runAdaptiveShard runs one trial-range shard of the current adaptive
// round: it replays the search against the -resume continuation's pooled
// evaluations and runs this shard's slice of the first pending round. When
// the pool already completes the search there is nothing left to shard and
// the final trace is reported directly.
func runAdaptiveShard(name string, shard engine.ShardSpec, resume string, opt engine.Options, snapshot, out string, strip, quiet bool) {
	ap, err := resolveAdaptive(name)
	if err != nil {
		fatal(err)
	}
	var prior *engine.Snapshot
	if resume != "" {
		s, err := engine.ReadSnapshotFile(resume)
		if err != nil {
			fatal(err)
		}
		prior = &s
	}
	snap, res, err := engine.RunAdaptiveShard(ap, shard, prior, opt)
	if err != nil {
		fatal(err)
	}
	if res != nil {
		if !quiet {
			fmt.Print(engine.RenderAdaptiveTable(*res))
		}
		fmt.Fprintf(os.Stderr, "ndscen: adaptive %s already complete from pooled evaluations\n", res.Name)
		if strip {
			res.StripRuntime()
		}
		writeOut(out, func(w io.Writer) error { return engine.WriteAdaptiveJSON(w, *res) })
		return
	}
	exitLine(fmt.Sprintf("adaptive %s shard %s: %d pending points", ap.Name, shard, len(snap.Points)), *opt.Metrics)
	writeShardSnapshot(snapshot, *snap)
}

// runSweep resolves (registry name, else SweepSpec JSON file), expands and
// runs the sweep — through the resumable journal when -journal names a
// directory — and reports one row per grid point.
func runSweep(name string, opt engine.Options, out string, plot, quiet, strip bool, journal string) {
	sp, err := resolveSweep(name)
	if err != nil {
		fatal(err)
	}
	var aggs []engine.Aggregate
	if journal != "" {
		scenarios, err := sp.Expand()
		if err != nil {
			fatal(err)
		}
		aggs, err = engine.RunJournaled(sp.Name, scenarios, opt, journal)
		if err != nil {
			fatal(err)
		}
	} else {
		aggs, err = engine.RunSweep(sp, opt)
		if err != nil {
			fatal(err)
		}
	}

	if !quiet {
		fmt.Print(engine.RenderSweepTable(sp, aggs))
		if ch := engine.RenderChannels(aggs); ch != "" {
			fmt.Println()
			fmt.Print(ch)
		}
	}
	if plot {
		fmt.Println()
		fmt.Print(engine.RenderCDF(aggs))
	}
	summarize(*opt.Metrics, quiet)
	exitLine(fmt.Sprintf("sweep %s: %d points", sp.Name, len(aggs)), *opt.Metrics)

	res := engine.SuiteResult{Suite: sp.Name, Scenarios: aggs, Runtime: opt.Metrics}
	if strip {
		res.StripRuntime()
	}
	writeResult(out, res)
}

// runAdaptive resolves (registry name, else AdaptiveSpec JSON file), runs
// the coarse-to-fine search, and reports the refinement trace.
func runAdaptive(name string, opt engine.Options, out string, quiet, strip bool) {
	ap, err := resolveAdaptive(name)
	if err != nil {
		fatal(err)
	}
	res, err := engine.RunAdaptive(ap, opt)
	if err != nil {
		fatal(err)
	}

	if !quiet {
		fmt.Print(engine.RenderAdaptiveTable(res))
	}
	summarize(*opt.Metrics, quiet)
	exitLine(fmt.Sprintf("adaptive %s: %d evaluations over %d rounds",
		res.Name, res.Evaluations, len(res.Rounds)), *opt.Metrics)

	if strip {
		res.StripRuntime()
	}
	writeOut(out, func(w io.Writer) error { return engine.WriteAdaptiveJSON(w, res) })
}

// summarize prints the metrics summary block after the tables (suppressed
// by -quiet, like the tables themselves).
func summarize(m obs.RunMetrics, quiet bool) {
	if quiet {
		return
	}
	fmt.Println()
	fmt.Print(engine.RenderRunMetrics(m))
}

// exitLine is the always-on stderr closing line: what ran, the total wall
// time, the throughput, and the worker count actually used — straight
// from the run's RunMetrics record.
func exitLine(what string, m obs.RunMetrics) {
	wall := time.Duration(m.WallMS * float64(time.Millisecond)).Round(time.Millisecond)
	fmt.Fprintf(os.Stderr, "ndscen: %s, %d trials in %v — %.0f trials/s, %d workers\n",
		what, m.Trials, wall, m.TrialsPerSec, m.Workers)
}

// progressPrinter renders Progress snapshots on stderr: in-place updates
// when stderr is a terminal, one line per snapshot otherwise (so logs
// redirected to a file stay readable). Safe alongside -out: progress goes
// to stderr, results to stdout or the -out file.
func progressPrinter() func(obs.Progress) {
	tty := false
	if fi, err := os.Stderr.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		tty = true
	}
	return func(p obs.Progress) {
		if tty {
			fmt.Fprintf(os.Stderr, "\r\x1b[Kndscen: %s", p)
			if p.Final {
				fmt.Fprintln(os.Stderr)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "ndscen: %s\n", p)
	}
}

// profileStop holds the active profiling teardown so fatal() can flush
// profiles before exiting — a run that dies mid-sweep still leaves a
// valid CPU profile and trace behind.
var profileStop = func() {}

// startProfiles arms the requested profilers and returns (and registers)
// the idempotent teardown. The heap profile is written at teardown, after
// a GC, so it reflects live state rather than transient garbage.
func startProfiles(cpu, mem, traceFile string) func() {
	var stops []func()
	create := func(path string) *os.File {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		return f
	}
	if cpu != "" {
		f := create(cpu)
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if traceFile != "" {
		f := create(traceFile)
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if mem != "" {
		f := create(mem)
		stops = append(stops, func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ndscen: writing heap profile: %v\n", err)
			}
			f.Close()
		})
	}
	done := false
	profileStop = func() {
		if done {
			return
		}
		done = true
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	return profileStop
}

func resolveAdaptive(name string) (engine.AdaptiveSpec, error) {
	return resolveSpecArg(name, "adaptive sweep spec", engine.AdaptivePreset)
}

func resolveSweep(name string) (engine.SweepSpec, error) {
	return resolveSpecArg(name, "sweep spec", engine.SweepPreset)
}

// resolveSpecArg resolves a -sweep/-adaptive argument: a registry preset
// name first, else a strict JSON spec file (unknown keys rejected, like
// -spec files — a typo'd field must not silently vanish).
func resolveSpecArg[T any](name, what string, preset func(string) (T, error)) (T, error) {
	var zero T
	sp, err := preset(name)
	if err == nil {
		return sp, nil
	}
	blob, ferr := os.ReadFile(name)
	if ferr != nil {
		if os.IsNotExist(ferr) {
			// Not a preset and no such file: the preset error (which
			// lists the valid names) is the useful one.
			return zero, err
		}
		return zero, fmt.Errorf("%v; reading it as a %s file also failed: %w", err, what, ferr)
	}
	var fromFile T
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if jerr := dec.Decode(&fromFile); jerr != nil {
		return zero, fmt.Errorf("parsing %s %s: %w", what, name, jerr)
	}
	return fromFile, nil
}

func streamMode(s string) (engine.StreamMode, error) {
	mode, err := engine.ParseStreamMode(s)
	if err != nil {
		return mode, fmt.Errorf("unknown -stream mode %q (want auto, on or off)", s)
	}
	return mode, nil
}

func writeResult(out string, res engine.SuiteResult) {
	writeOut(out, func(w io.Writer) error { return engine.WriteJSON(w, res) })
}

// writeOut routes a JSON document to -out: nowhere, stdout ("-"), or a file.
func writeOut(out string, write func(io.Writer) error) {
	if out == "" {
		return
	}
	if out == "-" {
		if err := write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ndscen: wrote %s\n", out)
}

// collect resolves the three scenario-list sources; exactly one may be used.
func collect(suite, scenario, spec string) ([]engine.Scenario, string, error) {
	set := 0
	for _, s := range []string{suite, scenario, spec} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, "", fmt.Errorf("pass only one of -suite, -scenario, -spec, -sweep, -adaptive")
	}
	switch {
	case suite != "":
		scenarios, err := engine.Suite(suite)
		return scenarios, suite, err
	case scenario != "":
		var out []engine.Scenario
		for _, name := range strings.Split(scenario, ",") {
			sc, err := engine.Preset(strings.TrimSpace(name))
			if err != nil {
				return nil, "", err
			}
			out = append(out, sc)
		}
		return out, scenario, nil
	case spec != "":
		blob, err := os.ReadFile(spec)
		if err != nil {
			return nil, "", err
		}
		scenarios, err := parseSpec(spec, blob)
		return scenarios, spec, err
	}
	return nil, "", nil
}

// parseSpec accepts either a bare scenario array or a {"scenarios": [...]}
// document (a "suite" key is tolerated, matching the shape ndscen itself
// emits). Unknown keys are rejected — a typo'd "scenarioz" must not parse
// as an empty document — empty documents are errors, and when neither
// shape parses, both errors are reported (so an array with a broken
// element isn't masked by the unhelpful "cannot unmarshal array into
// object" of the fallback).
func parseSpec(path string, blob []byte) ([]engine.Scenario, error) {
	strict := func(v any) error {
		dec := json.NewDecoder(bytes.NewReader(blob))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return err
		}
		// A decoder stops after one value; trailing content (a bad
		// concatenation, a merge artifact) must not be silently dropped.
		if _, err := dec.Token(); err != io.EOF {
			return fmt.Errorf("trailing data after the first JSON value")
		}
		return nil
	}
	var arr []engine.Scenario
	arrErr := strict(&arr)
	if arrErr == nil {
		if len(arr) == 0 {
			return nil, fmt.Errorf("parsing %s: empty scenario list", path)
		}
		return arr, nil
	}
	var doc struct {
		Suite     string            `json:"suite"`
		Scenarios []engine.Scenario `json:"scenarios"`
	}
	if docErr := strict(&doc); docErr != nil {
		return nil, fmt.Errorf("parsing %s: not a scenario array (%v) and not a {\"scenarios\": [...]} document (%v)", path, arrErr, docErr)
	}
	if len(doc.Scenarios) == 0 {
		return nil, fmt.Errorf("parsing %s: document has no scenarios (is the \"scenarios\" key present and non-empty?)", path)
	}
	return doc.Scenarios, nil
}

func fatal(err error) {
	profileStop()
	fmt.Fprintf(os.Stderr, "ndscen: %v\n", err)
	os.Exit(1)
}
