package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Exit-path tests. The test binary re-execs itself with NDSCEN_RUN_MAIN=1,
// which routes TestMain straight into main(), so flag validation, fatal()
// exit codes, and stderr wording are pinned exactly as a shell user sees
// them — not through an in-process approximation.
func TestMain(m *testing.M) {
	if os.Getenv("NDSCEN_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runNdscen runs the CLI with the given arguments and returns its output
// streams and exit code.
func runNdscen(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "NDSCEN_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// Malformed -shard specs and inconsistent shard/merge/journal flag
// combinations must exit 1 with an error naming the problem.
func TestShardFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"zero shard", []string{"-suite", "paper-fig7", "-shard", "0/0", "-snapshot", "s.json"}, "shard"},
		{"k exceeds n", []string{"-suite", "paper-fig7", "-shard", "3/2", "-snapshot", "s.json"}, "shard"},
		{"negative k", []string{"-suite", "paper-fig7", "-shard", "-1/3", "-snapshot", "s.json"}, "shard"},
		{"garbage", []string{"-suite", "paper-fig7", "-shard", "one/three", "-snapshot", "s.json"}, `want "k/n"`},
		{"no snapshot", []string{"-suite", "paper-fig7", "-shard", "1/2"}, "needs -snapshot"},
		{"shard with journal", []string{"-suite", "paper-fig7", "-shard", "1/2", "-snapshot", "s.json", "-journal", "d"}, "mutually exclusive"},
		{"resume without shard", []string{"-adaptive", "adaptive-eta", "-resume", "c.json"}, "needs -shard and -adaptive"},
		{"stray positionals", []string{"-suite", "paper-fig7", "x.json"}, "unexpected arguments"},
		{"merge with run flags", []string{"-merge", "-suite", "paper-fig7", "x.json"}, "-merge takes snapshot files"},
		{"adaptive with journal", []string{"-adaptive", "adaptive-eta", "-journal", "d"}, "shard round by round"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runNdscen(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit code %d, want 1 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr %q does not contain %q", stderr, tc.want)
			}
			if !strings.HasPrefix(stderr, "ndscen: ") {
				t.Errorf("stderr %q does not carry the ndscen: prefix", stderr)
			}
		})
	}
}

// -merge with no file arguments, or with files that are not valid
// snapshots, must fail loudly.
func TestMergeInputErrors(t *testing.T) {
	_, stderr, code := runNdscen(t, "-merge")
	if code != 1 || !strings.Contains(stderr, "at least one snapshot file") {
		t.Errorf("bare -merge: exit %d, stderr %q", code, stderr)
	}

	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	_, stderr, code = runNdscen(t, "-merge", missing)
	if code != 1 || !strings.Contains(stderr, "nope.json") {
		t.Errorf("missing file: exit %d, stderr %q", code, stderr)
	}

	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte(`{"codec": "ndshard/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = runNdscen(t, "-merge", garbage)
	if code != 1 || !strings.Contains(stderr, "codec") {
		t.Errorf("wrong codec: exit %d, stderr %q", code, stderr)
	}
}

// A sharded run plus -merge must reproduce the unsharded -strip document
// byte for byte, end to end through the real CLI.
func TestShardMergeCLI(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	blob := `[{"name": "cli-pair", "protocol": {"kind": "optimal", "omega": 36, "alpha": 1, "eta": 0.05},
	           "population": 2, "trials": 9, "horizon": {"worst_multiple": 3}, "seed": 7}]`
	if err := os.WriteFile(spec, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}

	plain := filepath.Join(dir, "plain.json")
	if _, stderr, code := runNdscen(t, "-spec", spec, "-quiet", "-strip", "-out", plain); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr)
	}
	want, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}

	var shardFiles []string
	for k := 1; k <= 3; k++ {
		snap := filepath.Join(dir, "shard"+strconv.Itoa(k)+".json")
		shardFiles = append(shardFiles, snap)
		if _, stderr, code := runNdscen(t, "-spec", spec, "-quiet",
			"-shard", strconv.Itoa(k)+"/3", "-snapshot", snap); code != 0 {
			t.Fatalf("shard %d/3 failed: %s", k, stderr)
		}
	}

	merged := filepath.Join(dir, "merged.json")
	// Flags must precede the positional snapshot files: flag parsing stops
	// at the first non-flag argument.
	args := append([]string{"-merge", "-quiet", "-strip", "-out", merged}, shardFiles...)
	_, stderr, code := runNdscen(t, args...)
	if code != 0 {
		t.Fatalf("merge failed: %s", stderr)
	}
	if !strings.Contains(stderr, "merged 3 shards") {
		t.Errorf("merge stderr %q does not report the shard count", stderr)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged document differs from the unsharded run (%d vs %d bytes)", len(got), len(want))
	}
}

// A journaled sweep interrupted mid-run (simulated by deleting completed
// point entries) must resume, re-execute only the missing points, and
// still produce the golden-pinned document.
func TestJournalResumeCLI(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "engine", "testdata", "golden", "sweep-sweep-density.json"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	job := filepath.Join(dir, "job")
	out := filepath.Join(dir, "density.json")
	trialsRe := regexp.MustCompile(`(\d+) trials in`)
	run := func() (trials int) {
		t.Helper()
		_, stderr, code := runNdscen(t, "-sweep", "sweep-density", "-journal", job, "-quiet", "-strip", "-out", out)
		if code != 0 {
			t.Fatalf("journaled sweep failed: %s", stderr)
		}
		m := trialsRe.FindStringSubmatch(stderr)
		if m == nil {
			t.Fatalf("no trial count in stderr %q", stderr)
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, golden) {
			t.Errorf("journaled sweep differs from golden (%d vs %d bytes)", len(got), len(golden))
		}
		return n
	}

	fresh := run()
	if fresh == 0 {
		t.Fatal("fresh run executed no trials")
	}

	// Simulate the kill: one completed point never made it to the journal.
	if err := os.Remove(filepath.Join(job, "point-0002.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	resumed := run()
	if resumed == 0 || resumed >= fresh {
		t.Errorf("resume ran %d trials, want fewer than the fresh run's %d and more than 0", resumed, fresh)
	}
}
