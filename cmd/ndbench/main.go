// Command ndbench runs the repository's benchmark registry in-process and
// normalizes the testing.B output into a schema'd trajectory document
// (BENCH_<pr>.json): ns/op, allocs/op, trials/sec and a host fingerprint.
// One file per PR is committed at the repo root, so performance claims in
// PR descriptions are grounded in recorded numbers and CI can compare each
// PR against its predecessor.
//
//	go run ./cmd/ndbench -label "PR 6" -out BENCH_6.json
//	go run ./cmd/ndbench -compare BENCH_5.json -against BENCH_6.json
//	go run ./cmd/ndbench -compare BENCH_5.json            # runs live, then compares
//
// Comparison is tolerant by default (see obs.DefaultBenchTolerance):
// regressions are reported but the exit status stays zero unless -strict
// is set, because shared CI runners are noisy and the trajectory exists to
// catch order-of-magnitude drifts, not wobbles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/coverage"
	"repro/internal/engine"
	"repro/internal/multichannel"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/slots"
	"repro/internal/textplot"
)

// bench is one registry entry: a name, the Monte-Carlo trials a single op
// executes (0 for analytic kernels), and the benchmark body.
type bench struct {
	name   string
	trials int
	fn     func(b *testing.B)
}

// registry mirrors the tracked benchmarks from internal/engine/bench_test.go
// and the root paper-artifact bench suite, expressed through the same public
// entry points so the numbers measure what users run.
func registry() ([]bench, error) {
	busy, err := engine.Preset("busynetwork-jitter")
	if err != nil {
		return nil, err
	}
	busy.Name = "bench-busy"
	busy.Population = 10

	fast, err := engine.Preset("ble3-fast")
	if err != nil {
		return nil, err
	}
	crowd, err := engine.Preset("ble3-crowd")
	if err != nil {
		return nil, err
	}
	grids, err := engine.Suite("slotgrid")
	if err != nil {
		return nil, err
	}
	grid := grids[0]

	quick, err := engine.Preset("quickstart")
	if err != nil {
		return nil, err
	}

	all := runtime.GOMAXPROCS(0)
	exact := quick
	exact.Exact = true
	return []bench{
		{"EngineScenario1Worker", 32, engineBench(busy, 32, 1)},
		{"EngineScenarioAllCores", 32, engineBench(busy, 32, all)},
		{"EngineMultiChannelPair", 64, engineBench(fast, 64, all)},
		{"EngineSlotGridPair", 64, engineBench(grid, 64, all)},
		{"EngineMultiChannelGroup", 16, engineBench(crowd, 16, all)},
		// The exact-analysis fast path against its Monte-Carlo twin: the
		// same preset answered from the schedule analysis (no trials) vs
		// simulated at its registry trial count. Their ns/op ratio is the
		// exact-mode speedup the trajectory tracks.
		{"EngineExactPoint", 0, engineBench(exact, 0, all)},
		{"EngineExactPointMC", 500, engineBench(quick, 500, all)},
		{"CoverageAnalyzeDisco2329", 0, benchCoverageDisco},
		{"MultichannelAnalyzeBLE", 0, benchMultichannelBLE},
		{"SlotDomainWorstCase", 0, benchSlotWorstCase},
	}, nil
}

// engineBench measures RunScenario end to end at a fixed trial count and
// worker count. The build cache is warmed first so the loop measures
// trials, not schedule analysis.
func engineBench(sc engine.Scenario, trials, workers int) func(*testing.B) {
	return func(b *testing.B) {
		sc := sc
		sc.Trials = trials
		if _, err := engine.RunScenario(sc, engine.Options{Trials: 1}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunScenario(sc, engine.Options{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchCoverageDisco: the exact coverage kernel on a production-scale
// Disco pair (primes 23×29: 667 slots, 102 beacons per period).
func benchCoverageDisco(b *testing.B) {
	d, err := protocols.NewDisco(23, 29, 5000, 36)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := d.DeviceFullDuplex()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coverage.Analyze(dev.B, dev.C, coverage.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMultichannelBLE: the exact 3-channel BLE latency analysis on the
// continuous-scanning preset.
func benchMultichannelBLE(b *testing.B) {
	cfg := multichannel.BLE(20000, 128, 30000, 30000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multichannel.Analyze(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSlotWorstCase: the combinatorial slot-domain engine on Disco(5,7).
func benchSlotWorstCase(b *testing.B) {
	d, err := slots.Disco(5, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := slots.Symmetric(d); !ok {
			b.Fatal("not deterministic")
		}
	}
}

// hostInfo fingerprints the machine so cross-host comparisons are visibly
// apples-to-oranges. The CPU model is best-effort (Linux only).
func hostInfo() obs.HostInfo {
	h := obs.HostInfo{
		Go:   runtime.Version(),
		OS:   runtime.GOOS,
		Arch: runtime.GOARCH,
		CPUs: runtime.NumCPU(),
	}
	if blob, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(blob), "\n") {
			if name, val, ok := strings.Cut(line, ":"); ok &&
				strings.TrimSpace(name) == "model name" {
				h.CPUModel = strings.TrimSpace(val)
				break
			}
		}
	}
	return h
}

// normalize converts one testing.Benchmark result into a schema row,
// deriving trials/sec for trial-running benchmarks.
func normalize(b bench, r testing.BenchmarkResult) obs.BenchResult {
	row := obs.BenchResult{
		Name:        b.name,
		Iters:       int64(r.N),
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		TrialsPerOp: b.trials,
	}
	if b.trials > 0 && row.NsPerOp > 0 {
		row.TrialsPerSec = float64(b.trials) / (row.NsPerOp / 1e9)
	}
	return row
}

func runAll(benches []bench, label, benchtime string) (obs.BenchFile, error) {
	f := obs.BenchFile{
		Schema:    obs.BenchSchema,
		Label:     label,
		Benchtime: benchtime,
		Host:      hostInfo(),
	}
	for _, b := range benches {
		fmt.Fprintf(os.Stderr, "ndbench: running %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		if r.N == 0 {
			return f, fmt.Errorf("benchmark %s failed (0 iterations)", b.name)
		}
		f.Results = append(f.Results, normalize(b, r))
	}
	return f, f.Validate()
}

func renderResults(f obs.BenchFile) string {
	tbl := textplot.NewTable("benchmark", "iters", "ns/op", "allocs/op", "trials/s")
	for _, r := range f.Results {
		trials := "—"
		if r.TrialsPerSec > 0 {
			trials = fmt.Sprintf("%.0f", r.TrialsPerSec)
		}
		tbl.Add(r.Name, fmt.Sprintf("%d", r.Iters), fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp), trials)
	}
	return tbl.String()
}

func renderDeltas(deltas []obs.BenchDelta) string {
	tbl := textplot.NewTable("benchmark", "base ns/op", "cur ns/op", "ratio", "base allocs", "cur allocs", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.OnlyBase:
			verdict = "dropped"
		case d.OnlyCurrent:
			verdict = "new"
		case d.Regression && d.AllocRegression:
			verdict = "REGRESSION (ns+allocs)"
		case d.Regression:
			verdict = "REGRESSION"
		case d.AllocRegression:
			verdict = "ALLOC REGRESSION"
		case d.Improvement:
			verdict = "improved"
		}
		ns := func(v float64) string {
			if v == 0 {
				return "—"
			}
			return fmt.Sprintf("%.0f", v)
		}
		ratio := "—"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", d.Ratio)
		}
		allocs := func(v int64) string {
			if d.OnlyBase || d.OnlyCurrent {
				return "—"
			}
			return fmt.Sprintf("%d", v)
		}
		tbl.Add(d.Name, ns(d.BaseNs), ns(d.CurNs), ratio,
			allocs(d.BaseAllocs), allocs(d.CurAllocs), verdict)
	}
	return tbl.String()
}

func writeFile(path string, f obs.BenchFile) error {
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndbench:", err)
	os.Exit(1)
}

func main() {
	var (
		out       = flag.String("out", "", "write the trajectory JSON here (\"-\" for stdout)")
		label     = flag.String("label", "", "label recorded in the document (e.g. \"PR 6\")")
		benchtime = flag.String("benchtime", "200ms", "per-benchmark measuring time (testing -benchtime syntax, e.g. 1s or 100x)")
		benchRe   = flag.String("bench", "", "only run benchmarks matching this regexp")
		list      = flag.Bool("list", false, "list registry benchmark names and exit")
		compare   = flag.String("compare", "", "baseline BENCH_*.json to compare against")
		against   = flag.String("against", "", "candidate BENCH_*.json for -compare (default: run live)")
		tol       = flag.Float64("tolerance", obs.DefaultBenchTolerance, "relative ns/op slack before a row counts as regressed")
		allocTol  = flag.Float64("alloctol", obs.DefaultAllocTolerance, "relative allocs/op slack before a row counts as regressed (allocs are deterministic, so this band is tight)")
		strict    = flag.Bool("strict", false, "exit nonzero when -compare finds regressions")
	)
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatal(fmt.Errorf("invalid -benchtime %q: %w", *benchtime, err))
	}

	benches, err := registry()
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, b := range benches {
			fmt.Println(b.name)
		}
		return
	}
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			fatal(fmt.Errorf("invalid -bench regexp: %w", err))
		}
		kept := benches[:0]
		for _, b := range benches {
			if re.MatchString(b.name) {
				kept = append(kept, b)
			}
		}
		benches = kept
		if len(benches) == 0 {
			fatal(fmt.Errorf("-bench %q matches no registry benchmarks", *benchRe))
		}
	}

	// Comparing two committed files needs no benchmark run at all.
	var cur obs.BenchFile
	if *compare != "" && *against != "" {
		cur, err = obs.ReadBenchFile(*against)
	} else {
		cur, err = runAll(benches, *label, *benchtime)
	}
	if err != nil {
		fatal(err)
	}

	if *compare == "" || *against == "" {
		fmt.Print(renderResults(cur))
	}
	if *out != "" {
		if err := writeFile(*out, cur); err != nil {
			fatal(err)
		}
		if *out != "-" {
			fmt.Fprintf(os.Stderr, "ndbench: wrote %s (%d results)\n", *out, len(cur.Results))
		}
	}

	if *compare != "" {
		base, err := obs.ReadBenchFile(*compare)
		if err != nil {
			fatal(err)
		}
		if base.Host != cur.Host {
			fmt.Fprintln(os.Stderr, "ndbench: warning: host fingerprints differ; ratios are apples-to-oranges")
		}
		deltas := obs.CompareBench(base, cur, *tol, *allocTol)
		fmt.Print(renderDeltas(deltas))
		if n := obs.Regressions(deltas); n > 0 {
			fmt.Fprintf(os.Stderr, "ndbench: %d benchmark(s) regressed (ns/op beyond %.0f%% or allocs/op beyond %.0f%%) vs %s\n",
				n, *tol*100, *allocTol*100, *compare)
			if *strict {
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "ndbench: tolerant mode — not failing (use -strict in CI gates)")
		} else {
			fmt.Fprintf(os.Stderr, "ndbench: no regressions vs %s\n", *compare)
		}
	}
}
