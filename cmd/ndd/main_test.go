package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/timebase"
	"repro/nd"
)

// The e2e harness re-execs the test binary with NDD_RUN_MAIN=1, which
// routes TestMain straight into main(): a real daemon process on a real
// TCP port, startable, killable (SIGKILL included, for the crash-resume
// test), exactly as a shell user runs it.
func TestMain(m *testing.M) {
	if os.Getenv("NDD_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var listenLine = regexp.MustCompile(`ndd: listening on (http://[^\s]+)`)

// daemon is one re-exec'd ndd process.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches ndd with the given flags on an ephemeral port and
// waits for the listen line on stderr.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), "NDD_RUN_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The listen line is the daemon's first stderr output; scan until it
	// appears, then keep draining the pipe so the child never blocks on a
	// full stderr buffer.
	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		if m := listenLine.FindStringSubmatch(sc.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		cmd.Wait()
		t.Fatalf("daemon never printed its listen line (err %v)", sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return &daemon{cmd: cmd, base: base}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("..", "..", "internal", "engine", "testdata", "golden", name))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	return blob
}

// stripSuiteDoc re-renders a served suite/sweep document without its
// runtime sections.
func stripSuiteDoc(t *testing.T, doc []byte) []byte {
	t.Helper()
	var res engine.SuiteResult
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatalf("parse document: %v", err)
	}
	res.StripRuntime()
	var buf bytes.Buffer
	if err := engine.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeGolden: the document a real ndd process serves over real HTTP
// for a committed preset is byte-identical (after stripping runtime
// sections) to the engine's golden file, and resubmission is answered from
// the result cache with the same bytes.
func TestServeGolden(t *testing.T) {
	d := startDaemon(t, "-workers", "2")
	ctx := testCtx(t)
	client := nd.Dial(d.base)

	st, err := nd.SubmitJob(ctx, client, nd.JobRequest{Kind: "suite", Name: "paper-fig7"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := nd.WaitJob(ctx, client, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("job state %q, error %q", final.State, final.Error)
	}
	doc, err := nd.JobResult(ctx, client, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripSuiteDoc(t, doc), readGolden(t, "suite-paper-fig7.json"); !bytes.Equal(got, want) {
		t.Errorf("served document differs from golden\ngot:\n%s\nwant:\n%s", got, want)
	}

	re, err := nd.SubmitJob(ctx, client, nd.JobRequest{Kind: "suite", Name: "paper-fig7"})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Cached || re.Runtime == nil || !re.Runtime.ResultCacheHit {
		t.Errorf("resubmit = %+v, want result-cache hit", re)
	}
	cached, err := nd.JobResult(ctx, client, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached, doc) {
		t.Error("cached document differs from the fresh run's bytes")
	}
}

// crashSweep is sized so each grid point takes long enough that a SIGKILL
// lands mid-sweep with some points journaled and some not.
func crashSweep() *engine.SweepSpec {
	return &engine.SweepSpec{
		Name: "crash-sweep",
		Base: engine.Scenario{
			Protocol:   engine.ProtocolSpec{Kind: "optimal", Omega: 36 * timebase.Microsecond, Alpha: 1},
			Population: 6,
			Trials:     12000,
			Horizon:    engine.HorizonSpec{WorstMultiple: 6},
			Channel:    engine.ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360},
			Seed:       7,
		},
		Axes: []engine.SweepAxis{{Field: "protocol.eta", Values: []float64{0.02, 0.04, 0.06, 0.08, 0.1, 0.12}}},
	}
}

// TestCrashResume: SIGKILL a journal-backed daemon mid-sweep, restart it
// on the same journal, and the job resumes — re-executing only the points
// that never completed — to a document identical to an uninterrupted run.
func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)
	req := nd.JobRequest{Kind: "sweep", Sweep: crashSweep()}

	d := startDaemon(t, "-workers", "2", "-journal", dir)
	st, err := nd.SubmitJob(ctx, nd.Dial(d.base), req)
	if err != nil {
		t.Fatal(err)
	}
	jobDir := filepath.Join(dir, "jobs", st.ID)

	// Wait for at least one journaled point, then SIGKILL — no shutdown
	// hooks, no graceful drain.
	pointGlob := filepath.Join(jobDir, "engine", "point-*.json")
	for {
		points, _ := filepath.Glob(pointGlob)
		if len(points) >= 1 {
			break
		}
		if err := ctx.Err(); err != nil {
			t.Fatalf("no point ever journaled: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	// On a fast machine the kill can land after the whole sweep finished;
	// force the mid-sweep shape deterministically: no result, at least one
	// point missing.
	os.Remove(filepath.Join(jobDir, "result.json"))
	if points, _ := filepath.Glob(pointGlob); len(points) == 6 {
		os.Remove(points[len(points)-1])
	}
	survivors, _ := filepath.Glob(pointGlob)
	if len(survivors) == 0 || len(survivors) == 6 {
		t.Fatalf("journal holds %d/6 points after the kill — not a mid-sweep state", len(survivors))
	}

	// Restart on the same journal: recovery re-enqueues the job under the
	// same identity and the engine journal limits the re-run to the
	// missing points.
	d2 := startDaemon(t, "-workers", "2", "-journal", dir)
	client := nd.Dial(d2.base)
	final, err := nd.WaitJob(ctx, client, st.ID)
	if err != nil {
		t.Fatalf("job did not survive the crash: %v", err)
	}
	if final.State != "done" {
		t.Fatalf("resumed job state %q, error %q", final.State, final.Error)
	}
	if final.Runtime == nil || final.Runtime.ResumedPoints != len(survivors) {
		t.Errorf("resumed_points = %+v, want %d restored from the journal", final.Runtime, len(survivors))
	}
	doc, err := nd.JobResult(ctx, client, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same sweep computed in-process, straight through the
	// engine. The resumed daemon's document must match it byte for byte
	// once runtime sections are stripped.
	scenarios, err := crashSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := engine.RunSuite(scenarios, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := engine.SuiteResult{Suite: "crash-sweep", Scenarios: aggs}
	want.StripRuntime()
	var buf bytes.Buffer
	if err := engine.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if got := stripSuiteDoc(t, doc); !bytes.Equal(got, buf.Bytes()) {
		t.Error("resumed document differs from an uninterrupted in-process run")
	}
}

// TestFlagErrors: bad invocations exit 1 with an error on stderr.
func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"stray positionals", []string{"stray"}, "unexpected arguments"},
		{"unlistenable addr", []string{"-addr", "256.0.0.1:99999"}, "listen"},
	}
	for _, tc := range cases {
		cmd := exec.Command(os.Args[0], tc.args...)
		cmd.Env = append(os.Environ(), "NDD_RUN_MAIN=1")
		var errb bytes.Buffer
		cmd.Stderr = &errb
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Errorf("%s: err %v, want exit 1", tc.name, err)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("%s: stderr %q, want %q", tc.name, errb.String(), tc.want)
		}
	}
}

// TestGracefulShutdown: SIGTERM drains and exits 0.
func TestGracefulShutdown(t *testing.T) {
	d := startDaemon(t)
	if _, err := nd.Dial(d.base).Healthz(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Errorf("SIGTERM exit: %v, want clean exit", err)
	}
}
