// Command ndd is the neighbor-discovery daemon: the scenario engine as a
// long-running HTTP service. It accepts scenario, suite, sweep and
// adaptive job submissions, runs them over one shared worker pool behind a
// bounded priority queue, streams progress and per-point results as
// Server-Sent Events, answers repeated submissions from a result cache
// keyed by the canonical spec hash, and — when -journal names a directory —
// persists jobs so a killed daemon resumes unfinished work on restart.
//
// Every served document is byte-identical (after stripping the runtime
// sections) to what the equivalent ndscen invocation writes: the service
// layer schedules and caches, it never perturbs results.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (kind, name/inline spec, options)
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job status + runtime metrics
//	GET    /v1/jobs/{id}/result finished document (JSON)
//	GET    /v1/jobs/{id}/events SSE stream: progress, point, result
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/presets          registry listing (presets, suites, sweeps, adaptive)
//	GET    /healthz             health + queue/cache counters
//
// Usage:
//
//	ndd -addr 127.0.0.1:8080
//	ndd -addr 127.0.0.1:0 -workers 8 -journal /var/lib/ndd
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"suite","name":"paper-fig7"}'
//	curl -s localhost:8080/v1/jobs/{id}/result
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
		workers = flag.Int("workers", 0, "engine worker goroutines per job (0 = GOMAXPROCS)")
		runners = flag.Int("runners", 1, "jobs executing concurrently")
		queue   = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		cache   = flag.Int("cache", 128, "finished jobs retained for result-cache hits")
		journal = flag.String("journal", "", "journal directory: persist jobs and resume unfinished ones on restart")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}

	srv, err := server.New(server.Config{
		Workers:      *workers,
		Runners:      *runners,
		QueueSize:    *queue,
		CacheEntries: *cache,
		JournalDir:   *journal,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The resolved address (ephemeral ports included) goes to stderr
	// before serving: scripts and the e2e harness parse this line.
	fmt.Fprintf(os.Stderr, "ndd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "ndd: %v: shutting down\n", got)
	case err := <-errc:
		fatal(err)
	}

	// Graceful drain: stop accepting, finish in-flight responses, then
	// stop the runners (canceling the running job; journal-backed jobs
	// resume on the next start).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ndd: shutdown: %v\n", err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ndd: %v\n", err)
	os.Exit(1)
}
