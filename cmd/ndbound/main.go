// Command ndbound computes the paper's fundamental neighbor-discovery
// bounds for a given radio configuration.
//
// Usage:
//
//	ndbound [-omega µs] [-alpha r] [-eta d] [-etaE d -etaF d]
//	        [-betamax b] [-S n] [-pc p] [-pf p]
//
// Examples:
//
//	ndbound -eta 0.01                 # all symmetric bounds at η = 1 %
//	ndbound -etaE 0.02 -etaF 0.08     # asymmetric bound
//	ndbound -eta 0.05 -S 100 -pc 0.01 # collision-constrained bound
//	ndbound -eta 0.05 -S 3 -pf 0.0005 # Appendix B redundancy solution
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/textplot"
	"repro/internal/timebase"
)

func main() {
	var (
		omega   = flag.Int64("omega", 36, "packet airtime ω in µs")
		alpha   = flag.Float64("alpha", 1.0, "power ratio α = Ptx/Prx")
		eta     = flag.Float64("eta", 0.01, "duty-cycle η for symmetric bounds")
		etaE    = flag.Float64("etaE", 0, "duty-cycle of device E (asymmetric)")
		etaF    = flag.Float64("etaF", 0, "duty-cycle of device F (asymmetric)")
		betaMax = flag.Float64("betamax", 0, "channel-utilization cap βm (Theorem 5.6)")
		s       = flag.Int("S", 0, "number of simultaneous transmitters")
		pc      = flag.Float64("pc", 0.01, "collision-probability cap used with -S")
		pf      = flag.Float64("pf", 0, "failure-rate target for Appendix B (needs -S)")
	)
	flag.Parse()

	p := core.Params{Omega: timebase.Ticks(*omega), Alpha: *alpha}
	if !p.Valid() {
		fmt.Fprintf(os.Stderr, "ndbound: invalid radio parameters ω=%d α=%g\n", *omega, *alpha)
		os.Exit(2)
	}

	fmt.Printf("Radio: ω = %v, α = %g\n\n", p.Omega, p.Alpha)
	t := textplot.NewTable("bound", "inputs", "worst-case latency")

	sec := func(ticks float64) string {
		return fmt.Sprintf("%.6g s", ticks/float64(timebase.Second))
	}

	t.Add("symmetric (Thm 5.5)", fmt.Sprintf("η=%g", *eta), sec(p.Symmetric(*eta)))
	t.Add("mutual-exclusive (Thm C.1)", fmt.Sprintf("η=%g", *eta), sec(p.MutualExclusive(*eta)))
	t.Add("unidirectional (Thm 5.4)",
		fmt.Sprintf("β=γ=η/2=%g", *eta/2), sec(p.Unidirectional(*eta/2, *eta/2)))
	t.Add("slotted limit, Eq 18", fmt.Sprintf("η=%g", *eta), sec(p.SlottedZhengTime(*eta)))
	t.Add("slotted limit, Eq 19", fmt.Sprintf("η=%g", *eta), sec(p.SlottedCodeTime(*eta)))

	if *etaE > 0 && *etaF > 0 {
		t.Add("asymmetric (Thm 5.7)", fmt.Sprintf("ηE=%g ηF=%g", *etaE, *etaF),
			sec(p.Asymmetric(*etaE, *etaF)))
	}
	if *betaMax > 0 {
		t.Add("constrained (Thm 5.6)", fmt.Sprintf("η=%g βm=%g", *eta, *betaMax),
			sec(p.Constrained(*eta, *betaMax)))
	}
	if *s > 1 && *pf == 0 {
		bm := core.MaxBetaForCollisionRate(*s, *pc)
		t.Add("constrained by collisions (Fig 7)",
			fmt.Sprintf("η=%g S=%d Pc≤%g → βm=%.4g", *eta, *s, *pc, bm),
			sec(p.Constrained(*eta, bm)))
	}
	fmt.Print(t.String())

	if *pf > 0 && *s > 1 {
		sol, err := collision.SolveFractional(p, *eta, *pf, *s, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndbound: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nAppendix B redundancy solution (η=%g, Pf=%g, S=%d):\n", *eta, *pf, *s)
		fmt.Printf("  cover every offset %d times (+%0.2f fractional), β=%.4g, γ=%.4g\n",
			sol.Q, sol.QFrac, sol.Beta, sol.Gamma)
		fmt.Printf("  per-beacon Pc=%.4g, achieved Pf=%.4g, L' = %s\n",
			sol.Pc, sol.Pf, sec(sol.Latency))
	}
}
